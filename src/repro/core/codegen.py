"""Whole-model code generation (paper sections 3.4–3.6).

Given a composition, its sanitization info and the static layout, this module
emits a complete IR module:

* ``node_<name>``   — one function per mechanism (section 3.4.1 templates);
* ``eval_<control>`` — the grid-search evaluation kernel of each control
  mechanism (the unit of parallel / GPU execution, section 3.6);
* ``control_input_<control>`` — helper used by the parallel drivers to obtain
  the controller's true input values;
* ``run_pass``      — one scheduler pass: compiled activation conditions plus
  node calls (section 3.5: optimisation crosses the scheduler/node boundary);
* ``run_pass_rest`` — the same pass with control mechanisms skipped (used by
  the multicore/GPU drivers which evaluate the grid themselves);
* ``run_trial``     — per-trial state reset, the pass loop, compiled
  termination condition, monitor recording and the result record;
* ``run_model``     — the trial loop.

Node functions are marked ``alwaysinline``; at -O2/-O3 the inliner collapses
the entire model (scheduler included) into ``run_model``, which is what
enables the whole-model optimisations the paper credits for its largest
speedups (Figure 5b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..cogframe import conditions as cond
from ..cogframe.composition import Composition
from ..cogframe.mechanisms import GridSearchControlMechanism, Mechanism
from ..cogframe.sanitize import SanitizationInfo
from ..errors import CompilationError
from ..ir import (
    BOOL,
    F64,
    I64,
    VOID,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    PointerType,
    Value,
)
from ..ir.types import ArrayType
from .node_codegen import (
    EvalEmitContext,
    MechEmitContext,
    emit_node_function,
    emit_port_values,
    node_function_type,
    store_outputs,
)
from .structs import StaticLayout


@dataclass
class GridSearchInfo:
    """Metadata about a compiled grid-search region (consumed by backends)."""

    control_name: str
    kernel_name: str
    input_helper_name: str
    levels: List[List[float]]
    grid_size: int
    counter_stride: int
    input_size: int
    #: Bytes of read-write state replicated per evaluation/thread (used by the
    #: GPU simulator's occupancy model; includes the replicated PRNG state).
    private_bytes_per_eval: int


@dataclass
class CompiledArtifacts:
    """Everything the drivers need besides the IR module itself."""

    module: Module
    layout: StaticLayout
    grid_searches: List[GridSearchInfo] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Condition compilation
# ---------------------------------------------------------------------------


def emit_condition(
    builder: IRBuilder,
    condition: cond.Condition,
    layout: StaticLayout,
    pass_idx: Value,
    state_ptr: Value,
    prev_ptr: Value,
) -> Value:
    """Lower an activation/termination condition to an i1 value."""
    b = builder
    if isinstance(condition, cond.Always):
        return b.true()
    if isinstance(condition, cond.Never):
        return b.false()
    if isinstance(condition, cond.AtPass):
        return b.icmp("eq", pass_idx, b.i64(condition.n))
    if isinstance(condition, (cond.AfterPass, cond.AfterNPasses)):
        return b.icmp("sge", pass_idx, b.i64(condition.n))
    if isinstance(condition, cond.EveryNPasses):
        return b.icmp(
            "eq", b.srem(pass_idx, b.i64(condition.n)), b.i64(condition.offset)
        )
    if isinstance(condition, cond.EveryNCalls):
        count_field = StaticLayout.count_field(condition.dependency)
        index = layout.state_struct.field_index(count_field)
        count = b.load(b.gep(state_ptr, [b.i64(0), b.i64(index)]))
        count_int = b.fptosi(count)
        positive = b.icmp("sgt", count_int, b.i64(0))
        divisible = b.icmp("eq", b.srem(count_int, b.i64(condition.n)), b.i64(0))
        return b.and_(positive, divisible)
    if isinstance(condition, cond.ThresholdCrossed):
        offset, size = layout.output_offsets[condition.node]
        field_index = layout.output_struct.field_index(
            StaticLayout.output_field(condition.node)
        )
        field_ptr = b.gep(prev_ptr, [b.i64(0), b.i64(field_index)])
        field_type = layout.output_struct.field_type(field_index)
        values = []
        for i in range(size):
            if field_type.is_scalar:
                values.append(b.load(field_ptr))
            else:
                values.append(b.load(b.gep(field_ptr, [b.i64(0), b.i64(i)])))
        if condition.statistic == "max_abs":
            stats = [b.fabs(v) for v in values]
            stat = stats[0]
            for v in stats[1:]:
                stat = b.fmax(stat, v)
        elif condition.statistic == "max":
            stat = values[0]
            for v in values[1:]:
                stat = b.fmax(stat, v)
        else:  # min
            stat = values[0]
            for v in values[1:]:
                stat = b.fmin(stat, v)
        predicate = {">=": "oge", ">": "ogt", "<=": "ole", "<": "olt"}[condition.comparator]
        return b.fcmp(predicate, stat, b.f64(condition.threshold))
    if isinstance(condition, cond.All):
        result = b.true()
        for sub in condition.conditions:
            result = b.and_(
                result, emit_condition(b, sub, layout, pass_idx, state_ptr, prev_ptr)
            )
        return result
    if isinstance(condition, cond.Any):
        result = b.false()
        for sub in condition.conditions:
            result = b.or_(
                result, emit_condition(b, sub, layout, pass_idx, state_ptr, prev_ptr)
            )
        return result
    if isinstance(condition, cond.Not):
        inner = emit_condition(b, condition.condition, layout, pass_idx, state_ptr, prev_ptr)
        return b.xor(inner, b.true())
    raise CompilationError(
        f"condition {condition.describe()} is outside the compilable subset"
    )


# ---------------------------------------------------------------------------
# Whole-model generator
# ---------------------------------------------------------------------------


class ModelCodeGenerator:
    """Emit the full IR module for a composition.

    ``only`` selects *selective* generation for incremental recompiles
    (see :mod:`repro.core.patch`): node bodies are emitted only for the
    named mechanisms, every other mechanism contributes just a
    ``node_<name>`` declaration (same type, no blocks), and the scheduler
    functions — which call every node and are cheap relative to node
    bodies — are always regenerated.  The resulting *patch module* links
    against the unchanged nodes of a previous compile at lowering time.
    """

    def __init__(
        self,
        composition: Composition,
        info: SanitizationInfo,
        layout: StaticLayout,
        only: Optional[Iterable[str]] = None,
    ):
        self.composition = composition
        self.info = info
        self.layout = layout
        self.only = None if only is None else set(only)
        self.module = Module(f"distill_{composition.name}")
        self.module.add_struct(layout.params_struct)
        self.module.add_struct(layout.state_struct)
        self.module.add_struct(layout.output_struct)
        self.grid_searches: List[GridSearchInfo] = []

    # -- entry point ---------------------------------------------------------------
    def generate(self) -> CompiledArtifacts:
        for name in self.layout.execution_order:
            mech = self.composition.mechanisms[name]
            if self.only is not None and name not in self.only:
                self._declare_node(name)
                continue
            if isinstance(mech, GridSearchControlMechanism):
                self._emit_control(mech)
            else:
                emit_node_function(self.module, self.layout, self.composition, self.info, mech)
        self._emit_run_pass("run_pass", include_control=True)
        self._emit_run_pass("run_pass_rest", include_control=False)
        self._emit_run_trial()
        self._emit_run_model()
        return CompiledArtifacts(self.module, self.layout, self.grid_searches)

    def _declare_node(self, name: str) -> None:
        """Declare ``node_<name>`` so schedulers can call an unchanged node.

        Only the node entry point needs declaring: the scheduler functions
        never reference a control's ``eval_``/``control_input_`` helpers
        directly (those are reached through the node body or the parallel
        engines' :class:`GridSearchInfo`, both of which an incremental
        recompile carries over from the previous compile).
        """
        self.module.add_function(
            f"node_{name}",
            node_function_type(self.layout),
            ["params", "state", "prev", "cur", "ext"],
        )

    # -- control mechanisms ------------------------------------------------------------
    def _emit_control(self, control: GridSearchControlMechanism) -> None:
        kernel = self._emit_eval_kernel(control)
        helper = self._emit_control_input_helper(control)
        self._emit_control_node(control, kernel)
        prng_bytes = 2 * 8
        state_bytes = sum(
            np.asarray(v).size * 8
            for step in control.steps
            for v in step.mechanism.state_spec().values()
        )
        self.grid_searches.append(
            GridSearchInfo(
                control_name=control.name,
                kernel_name=kernel.name,
                input_helper_name=helper.name,
                levels=[list(lv) for lv in control.levels],
                grid_size=control.grid_size,
                counter_stride=control.counter_stride_per_evaluation(),
                input_size=control.input_size,
                private_bytes_per_eval=prng_bytes + state_bytes + 8 * control.input_size,
            )
        )

    def _emit_eval_kernel(self, control: GridSearchControlMechanism) -> Function:
        """``eval_<name>(params*, in..., alloc..., key, counter) -> cost``."""
        num_in = control.input_size
        num_signals = len(control.levels)
        arg_types = [PointerType(self.layout.params_struct)]
        arg_names = ["params"]
        arg_types += [F64] * num_in
        arg_names += [f"in{i}" for i in range(num_in)]
        arg_types += [F64] * num_signals
        arg_names += [f"alloc{i}" for i in range(num_signals)]
        arg_types += [F64, F64]
        arg_names += ["rng_key", "rng_counter"]
        fn = self.module.add_function(
            f"eval_{control.name}", FunctionType(F64, arg_types), arg_names
        )
        block = fn.append_block("entry")
        b = IRBuilder(block)
        b.current_source_node = control.name

        params_ptr = fn.args[0]
        inputs = fn.args[1 : 1 + num_in]
        allocs = fn.args[1 + num_in : 1 + num_in + num_signals]
        rng_key, rng_counter = fn.args[-2], fn.args[-1]

        # Kernel-local PRNG state (the replicated read-write state of §3.6).
        rng_state = b.alloca(ArrayType(F64, 2), name="eval_rng")
        rng_ptr = b.gep(rng_state, [b.i64(0), b.i64(0)])
        b.store(rng_key, rng_ptr)
        b.store(rng_counter, b.gep(rng_state, [b.i64(0), b.i64(1)]))

        produced: Dict[str, List[Value]] = {}
        for step in control.steps:
            mech = step.mechanism
            b.current_source_node = mech.name
            variable: List[Value] = []
            for source in step.sources:
                kind = source[0]
                if kind == "input":
                    _, start, length = source
                    variable.extend(inputs[start : start + length])
                elif kind == "allocation":
                    index = source[1]
                    if index == -1:
                        variable.extend(allocs)
                    else:
                        variable.append(allocs[index])
                else:
                    variable.extend(produced[source[1]])
            ctx = EvalEmitContext(
                b,
                self.layout,
                mech.name,
                params_ptr,
                rng_ptr,
                self.info.mechanisms[mech.name].state,
            )
            produced[mech.name] = mech.function.emit(ctx, variable)
        b.current_source_node = control.name
        b.ret(produced[control.objective_step][0])
        return fn

    def _emit_control_input_helper(self, control: GridSearchControlMechanism) -> Function:
        """``control_input_<name>(params, state, prev, cur, ext, out*)``."""
        arg_types = list(node_function_type(self.layout).param_types) + [PointerType(F64)]
        fn = self.module.add_function(
            f"control_input_{control.name}",
            FunctionType(VOID, arg_types),
            ["params", "state", "prev", "cur", "ext", "out"],
        )
        block = fn.append_block("entry")
        b = IRBuilder(block)
        b.current_source_node = control.name
        params_ptr, state_ptr, prev_ptr, cur_ptr, ext_ptr, out_ptr = fn.args
        variable = emit_port_values(
            b, self.layout, self.composition, control, prev_ptr, ext_ptr
        )
        for i, value in enumerate(variable):
            b.store(value, b.gep(out_ptr, [b.i64(i)]))
        b.ret()
        return fn

    def _emit_control_node(self, control: GridSearchControlMechanism, kernel: Function) -> None:
        """``node_<control>``: the serial grid loop with reservoir selection."""
        layout = self.layout
        fn = self.module.add_function(
            f"node_{control.name}",
            node_function_type(layout),
            ["params", "state", "prev", "cur", "ext"],
        )
        # The grid loop is deliberately *not* inlined into the trial driver:
        # it is the parallel region backends may replace.
        fn.attributes["alwaysinline"] = False
        params_ptr, state_ptr, prev_ptr, cur_ptr, ext_ptr = fn.args

        entry = fn.append_block("entry")
        loop = fn.append_block("grid_loop")
        tie_check = fn.append_block("tie_check")
        tie_break = fn.append_block("tie_break")
        latch = fn.append_block("grid_latch")
        done = fn.append_block("grid_done")

        b = IRBuilder(entry)
        b.current_source_node = control.name

        # True (undistorted) controller input.
        variable = emit_port_values(b, layout, self.composition, control, prev_ptr, ext_ptr)

        ctx = MechEmitContext(b, layout, control.name, params_ptr, state_ptr)
        epoch = ctx.load_state("eval_epoch")[0]
        rng_ptr = ctx.rng_ptr()

        num_signals = len(control.levels)
        level_counts = [len(lv) for lv in control.levels]
        grid_size = control.grid_size
        stride = control.counter_stride_per_evaluation()
        key = b.load(rng_ptr, name="ctl_key")
        counter_base = b.fmul(epoch, b.f64(float(grid_size * stride)))

        b.br(loop)

        # -- loop body -------------------------------------------------------------
        b.position_at_end(loop)
        idx = b.phi(I64, "grid_idx")
        best_cost = b.phi(F64, "best_cost")
        ties = b.phi(F64, "ties")
        best_allocs = [b.phi(F64, f"best_alloc{i}") for i in range(num_signals)]

        # Decompose the flat index into per-signal indices and level values.
        allocs: List[Value] = []
        remainder = idx
        for signal in range(num_signals):
            tail = 1
            for later in range(signal + 1, num_signals):
                tail *= level_counts[later]
            signal_idx = b.sdiv(remainder, b.i64(tail))
            remainder = b.srem(remainder, b.i64(tail))
            levels_field = StaticLayout.param_field(control.name, f"levels{signal}")
            findex = layout.params_struct.field_index(levels_field)
            ftype = layout.params_struct.field_type(findex)
            fptr = b.gep(params_ptr, [b.i64(0), b.i64(findex)])
            if ftype.is_scalar:
                allocs.append(b.load(fptr))
            else:
                allocs.append(b.load(b.gep(fptr, [b.i64(0), signal_idx])))

        counter = b.fadd(counter_base, b.fmul(b.sitofp(idx), b.f64(float(stride))))
        cost = b.call(kernel, [params_ptr] + variable + allocs + [key, counter], "cost")

        is_less = b.fcmp("olt", cost, best_cost)
        is_equal = b.fcmp("oeq", cost, best_cost)
        new_best_cost = b.select(is_less, cost, best_cost)
        ties_after = b.select(
            is_less, b.f64(1.0), b.select(is_equal, b.fadd(ties, b.f64(1.0)), ties)
        )
        b.cond_br(is_equal, tie_break, tie_check)

        # Tie: draw from the controller's own stream (reservoir sampling).
        b.position_at_end(tie_break)
        draw = b.rng_uniform(rng_ptr)
        take_tie = b.fcmp("olt", draw, b.fdiv(b.f64(1.0), ties_after))
        b.br(tie_check)

        b.position_at_end(tie_check)
        tie_taken = b.phi(BOOL, "tie_taken")
        tie_taken.add_incoming(b.false(), loop)
        tie_taken.add_incoming(take_tie, tie_break)
        take = b.or_(is_less, tie_taken)
        next_best_allocs = [
            b.select(take, alloc, prev_best)
            for alloc, prev_best in zip(allocs, best_allocs)
        ]
        next_idx = b.add(idx, b.i64(1))
        more = b.icmp("slt", next_idx, b.i64(grid_size))
        b.br(latch)

        b.position_at_end(latch)
        b.cond_br(more, loop, done)

        # Wire up the loop phis.
        idx.add_incoming(b.i64(0), entry)
        idx.add_incoming(next_idx, latch)
        best_cost.add_incoming(b.f64(float("inf")), entry)
        best_cost.add_incoming(new_best_cost, latch)
        ties.add_incoming(b.f64(0.0), entry)
        ties.add_incoming(ties_after, latch)
        for i, phi in enumerate(best_allocs):
            phi.add_incoming(b.f64(float(control.levels[i][0])), entry)
            phi.add_incoming(next_best_allocs[i], latch)

        # -- after the loop ----------------------------------------------------------
        b.position_at_end(done)
        final_allocs = [b.phi(F64, f"final_alloc{i}") for i in range(num_signals)]
        final_cost = b.phi(F64, "final_cost")
        for i, phi in enumerate(final_allocs):
            phi.add_incoming(next_best_allocs[i], latch)
        final_cost.add_incoming(new_best_cost, latch)

        ctx_done = MechEmitContext(b, layout, control.name, params_ptr, state_ptr)
        ctx_done.store_state("last_best_cost", [final_cost])
        store_outputs(b, layout, control.name, cur_ptr, final_allocs)
        b.ret()

    # -- pass / trial / model drivers ------------------------------------------------------
    def _emit_run_pass(self, name: str, include_control: bool) -> Function:
        layout = self.layout
        arg_types = list(node_function_type(layout).param_types) + [I64, I64]
        fn = self.module.add_function(
            name,
            FunctionType(VOID, arg_types),
            ["params", "state", "prev", "cur", "ext", "pass_idx", "trial_idx"],
        )
        fn.attributes["alwaysinline"] = True
        params_ptr, state_ptr, prev_ptr, cur_ptr, ext_ptr, pass_idx, trial_idx = fn.args
        current = fn.append_block("entry")

        # The interpretive runner evaluates every node's activation condition
        # against a *start-of-pass* snapshot of the scheduler state (execution
        # counts in particular).  Emit all condition values in the entry block,
        # before any node call increments a counter, so that an EveryNCalls
        # condition whose dependency runs earlier in the same pass sees the
        # pre-pass count exactly as the reference and per-node schedulers do.
        # (prev/cur double buffering already makes ThresholdCrossed stable.)
        scheduled = []
        cond_values: Dict[str, Value] = {}
        entry_builder = IRBuilder(current)
        for node_name in layout.execution_order:
            mech = self.composition.mechanisms[node_name]
            is_control = isinstance(mech, GridSearchControlMechanism)
            if is_control and not include_control:
                continue
            scheduled.append((node_name, is_control))
            condition = self.composition.conditions[node_name]
            cond_values[node_name] = emit_condition(
                entry_builder, condition, layout, pass_idx, state_ptr, prev_ptr
            )

        for node_name, is_control in scheduled:
            b = IRBuilder(current)
            run_block = fn.append_block(f"run_{node_name}")
            next_block = fn.append_block(f"after_{node_name}")
            b.cond_br(cond_values[node_name], run_block, next_block)

            b = IRBuilder(run_block)
            b.current_source_node = node_name
            if is_control:
                # epoch = trial * max_passes + pass, written before the search.
                epoch = b.add(
                    b.mul(trial_idx, b.i64(layout.max_passes)), pass_idx
                )
                ctx = MechEmitContext(b, layout, node_name, params_ptr, state_ptr)
                ctx.store_state("eval_epoch", [b.sitofp(epoch)])
            node_fn = self.module.get_function(f"node_{node_name}")
            b.call(node_fn, [params_ptr, state_ptr, prev_ptr, cur_ptr, ext_ptr])
            # Execution-count metadata (read by EveryNCalls and the modeller).
            count_index = layout.state_struct.field_index(StaticLayout.count_field(node_name))
            count_ptr = b.gep(state_ptr, [b.i64(0), b.i64(count_index)])
            b.store(b.fadd(b.load(count_ptr), b.f64(1.0)), count_ptr)
            b.br(next_block)
            current = next_block

        IRBuilder(current).ret()
        return fn

    def _emit_run_trial(self) -> Function:
        layout = self.layout
        arg_types = list(node_function_type(layout).param_types) + [
            PointerType(F64),  # results
            PointerType(F64),  # monitor
            I64,  # trial index
        ]
        fn = self.module.add_function(
            "run_trial",
            FunctionType(I64, arg_types),
            ["params", "state", "prev", "cur", "ext", "results", "monitor", "trial_idx"],
        )
        params_ptr, state_ptr, prev_ptr, cur_ptr, ext_ptr, results_ptr, monitor_ptr, trial_idx = fn.args

        entry = fn.append_block("entry")
        pass_header = fn.append_block("pass_header")
        pass_body = fn.append_block("pass_body")
        trial_done = fn.append_block("trial_done")

        b = IRBuilder(entry)
        # Reset read-write state (integrators, counters) — PRNG keys persist.
        for offset, values in layout.state_reset_entries:
            for i, value in enumerate(values):
                slot_index = self._state_slot_gep(b, state_ptr, offset + i)
                b.store(b.f64(float(value)), slot_index)
        # Zero the double buffers.
        for buffer_ptr in (prev_ptr, cur_ptr):
            for slot in range(layout.output_struct.slot_count()):
                b.store(b.f64(0.0), self._output_slot_gep(b, buffer_ptr, slot))
        b.br(pass_header)

        # -- pass loop header: termination check -------------------------------------------
        b.position_at_end(pass_header)
        pass_idx = b.phi(I64, "pass_idx")
        pass_idx.add_incoming(b.i64(0), entry)
        not_first = b.icmp("sgt", pass_idx, b.i64(0))
        terminated = emit_condition(
            b, self.composition.termination, layout, pass_idx, state_ptr, prev_ptr
        )
        over_limit = b.icmp("sge", pass_idx, b.i64(layout.max_passes))
        stop = b.or_(over_limit, b.and_(not_first, terminated))
        b.cond_br(stop, trial_done, pass_body)

        # -- pass body ------------------------------------------------------------------------
        b.position_at_end(pass_body)
        run_pass = self.module.get_function("run_pass")
        b.call(
            run_pass,
            [params_ptr, state_ptr, prev_ptr, cur_ptr, ext_ptr, pass_idx, trial_idx],
        )
        # cur -> prev (double-buffer swap by copy).
        for slot in range(layout.output_struct.slot_count()):
            value = b.load(self._output_slot_gep(b, cur_ptr, slot))
            b.store(value, self._output_slot_gep(b, prev_ptr, slot))
        # Monitor recording (end-of-pass values).
        if layout.monitor_size:
            record = b.add(b.mul(trial_idx, b.i64(layout.max_passes)), pass_idx)
            record_base = b.mul(record, b.i64(layout.monitor_size))
            for node_name, (offset, size) in layout.monitor_layout.items():
                out_offset, _ = layout.output_offsets[node_name]
                for i in range(size):
                    value = b.load(self._output_slot_gep(b, prev_ptr, out_offset + i))
                    slot_ptr = b.gep(monitor_ptr, [b.add(record_base, b.i64(offset + i))])
                    b.store(value, slot_ptr)
        next_pass = b.add(pass_idx, b.i64(1))
        pass_idx.add_incoming(next_pass, pass_body)
        b.br(pass_header)

        # -- trial end: result record ------------------------------------------------------------
        b.position_at_end(trial_done)
        record_size = layout.result_record_size()
        record_base = b.mul(trial_idx, b.i64(record_size))
        for node_name, (offset, size) in layout.result_layout.items():
            out_offset, _ = layout.output_offsets[node_name]
            for i in range(size):
                value = b.load(self._output_slot_gep(b, prev_ptr, out_offset + i))
                b.store(value, b.gep(results_ptr, [b.add(record_base, b.i64(offset + i))]))
        b.store(
            b.sitofp(pass_idx),
            b.gep(results_ptr, [b.add(record_base, b.i64(layout.result_size))]),
        )
        b.ret(pass_idx)
        return fn

    def _emit_run_model(self) -> Function:
        layout = self.layout
        arg_types = [
            PointerType(layout.params_struct),
            PointerType(layout.state_struct),
            PointerType(layout.output_struct),
            PointerType(layout.output_struct),
            PointerType(F64),  # all external inputs, row-major
            PointerType(F64),  # results
            PointerType(F64),  # monitor
            I64,  # num_trials
            I64,  # num_input_rows
        ]
        fn = self.module.add_function(
            "run_model",
            FunctionType(VOID, arg_types),
            [
                "params",
                "state",
                "prev",
                "cur",
                "inputs",
                "results",
                "monitor",
                "num_trials",
                "num_rows",
            ],
        )
        (
            params_ptr,
            state_ptr,
            prev_ptr,
            cur_ptr,
            inputs_ptr,
            results_ptr,
            monitor_ptr,
            num_trials,
            num_rows,
        ) = fn.args

        entry = fn.append_block("entry")
        header = fn.append_block("trial_header")
        body = fn.append_block("trial_body")
        done = fn.append_block("done")

        b = IRBuilder(entry)
        b.br(header)

        b.position_at_end(header)
        trial = b.phi(I64, "trial")
        trial.add_incoming(b.i64(0), entry)
        more = b.icmp("slt", trial, num_trials)
        b.cond_br(more, body, done)

        b.position_at_end(body)
        row = b.srem(trial, num_rows)
        ext_ptr = b.gep(inputs_ptr, [b.mul(row, b.i64(max(layout.input_size, 1)))])
        run_trial = self.module.get_function("run_trial")
        b.call(
            run_trial,
            [params_ptr, state_ptr, prev_ptr, cur_ptr, ext_ptr, results_ptr, monitor_ptr, trial],
        )
        next_trial = b.add(trial, b.i64(1))
        trial.add_incoming(next_trial, body)
        b.br(header)

        b.position_at_end(done)
        b.ret()
        return fn

    # -- small helpers ---------------------------------------------------------------------------
    def _output_slot_gep(self, b: IRBuilder, buffer_ptr: Value, slot: int) -> Value:
        """Pointer to a linear slot of the output struct (by field + element)."""
        struct = self.layout.output_struct
        running = 0
        for index, (_, ftype) in enumerate(struct.fields):
            size = ftype.slot_count()
            if slot < running + size:
                field_ptr = b.gep(buffer_ptr, [b.i64(0), b.i64(index)])
                if ftype.is_scalar:
                    return field_ptr
                return b.gep(field_ptr, [b.i64(0), b.i64(slot - running)])
            running += size
        raise CompilationError(f"output slot {slot} out of range")

    def _state_slot_gep(self, b: IRBuilder, state_ptr: Value, slot: int) -> Value:
        struct = self.layout.state_struct
        running = 0
        for index, (_, ftype) in enumerate(struct.fields):
            size = ftype.slot_count()
            if slot < running + size:
                field_ptr = b.gep(state_ptr, [b.i64(0), b.i64(index)])
                if ftype.is_scalar:
                    return field_ptr
                return b.gep(field_ptr, [b.i64(0), b.i64(slot - running)])
            running += size
        raise CompilationError(f"state slot {slot} out of range")


def generate_model_ir(
    composition: Composition, info: SanitizationInfo, layout: StaticLayout
) -> CompiledArtifacts:
    """Convenience wrapper around :class:`ModelCodeGenerator`."""
    return ModelCodeGenerator(composition, info, layout).generate()
