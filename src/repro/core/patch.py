"""Incremental recompilation: re-lower only the functions an edit touched.

Distill's compile pipeline is content-addressed per *compile unit* (one IR
function); this module exploits that to patch a live :class:`CompiledModel`
after a model edit instead of recompiling from scratch:

1. sanitize + layout run on the edited composition (they are cheap relative
   to optimisation and lowering, and an edit can change mined state);
2. a **layout-compatibility gate** checks that the static data structures
   (param/state/output struct layouts, input/result/monitor maps, execution
   order) are unchanged — otherwise every baked offset is suspect and the
   recompiler transparently falls back to a full compile, adopting its
   result in place;
3. a *patch module* is generated with
   :class:`~repro.core.codegen.ModelCodeGenerator` in selective mode
   (``only=changed``): full bodies for the edited mechanisms and the
   scheduler functions, bare ``node_<name>`` declarations for everything
   else;
4. regenerated functions whose structural fingerprint matches the previous
   compile are discarded (a pure parameter-value edit reaches a fixpoint
   here: plain parameters load from the params buffer, so the IR is
   bit-identical and only the layout's default param values need swapping);
5. anything genuinely stale is optimised with the model's own pipeline,
   lowered with the unchanged nodes *linked in* from the previous compile
   (their compiled callables are injected into the exec namespace), and
   grafted into the live module.

The full-module compile remains the differential anchor: the fuzz oracle's
incremental leg (``python -m repro.fuzz --incremental``) asserts that a
patched model is bitwise-equal — results, monitors and final PRNG counters —
to a cold compile of the edited composition on every engine.

Patched models are deliberately **not** written back to the artifact store:
their ``unit_fingerprints`` describe the original full compile, and the cold
path would happily re-create (or re-fetch) the exact entry anyway.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Optional, Set

from ..cogframe.composition import Composition
from ..cogframe.mechanisms import GridSearchControlMechanism
from ..cogframe.sanitize import sanitize
from .codegen import ModelCodeGenerator
from .structs import StaticLayout, build_layout

__all__ = ["recompile_model"]


# ---------------------------------------------------------------------------
# Edit discovery
# ---------------------------------------------------------------------------


def _mechanism_codegen_key(composition: Composition, name: str):
    """Everything that feeds ``name``'s generated node function.

    Besides the mechanism itself (type, ports, function parameters and — for
    control mechanisms — levels and steps), the node body bakes the incoming
    projection matrices and slices, and membership in the monitored /
    input / output sets decides which record-keeping code is emitted.
    """
    from ..driver.session import _canonical, _condition_key, _mechanism_key

    mech = composition.mechanisms[name]
    incoming = tuple(
        (p.sender.name, p.port, _canonical(p.matrix), _canonical(p.sender_slice))
        for p in composition.projections
        if p.receiver.name == name
    )
    return (
        _mechanism_key(mech),
        incoming,
        _condition_key(composition.conditions[name]),
        name in composition.input_nodes,
        name in composition.output_nodes,
        name in composition.monitored_nodes,
    )


def _diff_compositions(old: Composition, new: Composition) -> Optional[Set[str]]:
    """Mechanisms whose node function could differ between two compositions.

    Returns ``None`` when the edit is structural (mechanisms added or
    removed) and a patch cannot apply.  Scheduler-level edits (conditions,
    termination, ``max_passes``) need no entry here: the scheduler functions
    are always regenerated, and layout-affecting edits are caught by the
    compatibility gate.
    """
    if set(old.mechanisms) != set(new.mechanisms):
        return None
    return {
        name
        for name in new.mechanisms
        if _mechanism_codegen_key(old, name) != _mechanism_codegen_key(new, name)
    }


def _expand_changed(composition: Composition, changed: Set[str]) -> Set[str]:
    """Pull in control mechanisms whose eval kernels bake a changed step.

    A grid-search kernel inlines the functions and initial state of its step
    mechanisms, so editing a mechanism that doubles as a controller's step
    invalidates the kernel even though the controller itself was not named.
    """
    expanded = set(changed)
    for name, mech in composition.mechanisms.items():
        if name in expanded or not isinstance(mech, GridSearchControlMechanism):
            continue
        if any(step.mechanism.name in changed for step in mech.steps):
            expanded.add(name)
    return expanded


# ---------------------------------------------------------------------------
# Layout compatibility
# ---------------------------------------------------------------------------


def _layout_compatible(old: StaticLayout, new: StaticLayout) -> bool:
    """True when every offset baked into the previous compile still holds.

    Compares the three static structs by full structural signature (field
    names and types in order — :func:`repro.ir.fingerprint.type_signature`)
    plus the buffer maps and the execution order.  Parameter *values* are
    free to differ: they live in the params buffer, not the layout shape.
    """
    from ..ir.fingerprint import type_signature

    return (
        type_signature(old.params_struct) == type_signature(new.params_struct)
        and type_signature(old.state_struct) == type_signature(new.state_struct)
        and type_signature(old.output_struct) == type_signature(new.output_struct)
        and old.execution_order == new.execution_order
        and old.input_layout == new.input_layout
        and old.result_layout == new.result_layout
        and old.monitor_layout == new.monitor_layout
        and old.output_offsets == new.output_offsets
        and old.max_passes == new.max_passes
        and old.input_size == new.input_size
    )


# ---------------------------------------------------------------------------
# Patching
# ---------------------------------------------------------------------------


def _graft_functions(old_module, patch_module) -> None:
    """Install the patch module's defined functions into the live module.

    Replaced functions keep their name slot; calls inside grafted functions
    are re-pointed at the live module's functions (unchanged nodes keep
    their original definitions; intrinsics are declared on demand).
    """
    from ..ir.instructions import Call

    grafted = {}
    for fn in patch_module.defined_functions():
        old_module.functions[fn.name] = fn
        fn.module = old_module
        grafted[fn.name] = fn
    for fn in grafted.values():
        for instr in fn.instructions():
            if not isinstance(instr, Call):
                continue
            callee = instr.callee
            if callee.module is old_module:
                continue
            target = old_module.functions.get(callee.name)
            if target is None:
                if callee.intrinsic_name:
                    target = old_module.declare_intrinsic(callee.intrinsic_name)
                else:
                    callee.module = old_module
                    old_module.functions[callee.name] = callee
                    target = callee
            instr.callee = target


def _merge_grid_searches(model, regenerated) -> None:
    if not regenerated:
        return
    by_name = {g.control_name: g for g in regenerated}
    merged = [by_name.pop(g.control_name, g) for g in model.artifacts.grid_searches]
    merged.extend(by_name.values())
    model.artifacts.grid_searches = merged


def _invalidate_engines(model) -> None:
    model.close_engines()
    with model._engine_lock:
        model._engine_instances.clear()


def _swap_metadata(model, composition, info, layout) -> None:
    model.composition = composition
    model.info = info
    model.layout = layout
    model.artifacts.layout = layout


def _adopt(model, fresh) -> None:
    """Replace ``model``'s contents with a freshly compiled model's, in place.

    Used by the full-recompile fallback so callers keep one stable handle
    regardless of which path an edit took.  Cumulative recompile counters
    survive the swap.
    """
    patches = model.stats.artifact_patches
    recompile_seconds = model.stats.recompile_seconds
    model.composition = fresh.composition
    model.info = fresh.info
    model.layout = fresh.layout
    model.artifacts = fresh.artifacts
    model.module = fresh.module
    model.pipeline = fresh.pipeline
    model.pipeline_text = fresh.pipeline_text
    model.opt_level = fresh.opt_level
    model.flags = fresh.flags
    model.seed = fresh.seed
    model.stats = fresh.stats
    model.stats.artifact_patches = patches
    model.stats.recompile_seconds = recompile_seconds
    model.analysis_stats = fresh.analysis_stats
    model.source = fresh.source
    model.unit_fingerprints = fresh.unit_fingerprints
    model.function_fingerprints = fresh.function_fingerprints
    model._compiled = fresh._compiled
    with model._engine_lock:
        model._engine_instances.clear()


def _full_recompile(model, composition, store, started, reason: str) -> Dict[str, object]:
    from .distill import compile_composition

    fresh = compile_composition(
        composition,
        pipeline=model.pipeline,
        seed=model.seed,
        verify=None,  # a prebuilt manager keeps its own policy
        flags=model.flags or None,
        opt_level=model.opt_level,
        store=store,
    )
    _invalidate_engines(model)
    _adopt(model, fresh)
    elapsed = time.perf_counter() - started
    model.stats.recompile_seconds += elapsed
    return {
        "mode": "full",
        "reason": reason,
        "changed": None,
        "relowered": sorted(fresh._compiled),
        "seconds": elapsed,
    }


def recompile_model(
    model,
    composition: Optional[Composition] = None,
    changed: Optional[Iterable[str]] = None,
    store=None,
) -> Dict[str, object]:
    """Patch ``model`` in place to match an edited composition.

    ``composition`` defaults to the model's own (for in-place edits);
    ``changed`` names the edited mechanisms.  When both are omitted — or
    when ``changed`` is omitted for an in-place edit — every mechanism is
    regenerated and the fingerprint fixpoint discards the unchanged ones.
    When a *distinct* composition is passed without ``changed``, the edit
    set is discovered by structural diff.

    Contract for explicit ``changed``: it must cover every mechanism whose
    parameters, projections or function were edited (controls whose steps
    reference a changed mechanism are pulled in automatically).  The fuzz
    oracle's incremental leg cross-checks the result against a cold compile.
    """
    from ..analysis.manager import AnalysisManager
    from ..backends.pycodegen import PythonCodeGenerator
    from ..ir.fingerprint import function_fingerprint

    started = time.perf_counter()
    stats = model.stats
    new_composition = composition if composition is not None else model.composition

    if changed is not None:
        if set(new_composition.mechanisms) != set(model.composition.mechanisms):
            return _full_recompile(
                model, new_composition, store, started, "mechanism set changed"
            )
        changed_set = set(changed)
        unknown = changed_set - set(new_composition.mechanisms)
        if unknown:
            raise KeyError(f"changed names unknown mechanisms: {sorted(unknown)}")
    elif new_composition is model.composition:
        changed_set = set(new_composition.mechanisms)
    else:
        diffed = _diff_compositions(model.composition, new_composition)
        if diffed is None:
            return _full_recompile(
                model, new_composition, store, started, "mechanism set changed"
            )
        changed_set = diffed
    changed_set = _expand_changed(new_composition, changed_set)

    # Re-mine types/shapes/state on the edited composition: cheap relative
    # to optimise+lower, and edits can move the sanitize-baked values.
    info = sanitize(new_composition, seed=model.seed)
    layout = build_layout(new_composition, info)
    if not _layout_compatible(model.layout, layout):
        return _full_recompile(
            model, new_composition, store, started, "layout incompatible"
        )

    generator = ModelCodeGenerator(new_composition, info, layout, only=changed_set)
    patch_artifacts = generator.generate()
    patch_module = patch_artifacts.module

    new_fps = {
        fn.name: function_fingerprint(fn) for fn in patch_module.defined_functions()
    }
    stale = sorted(
        name
        for name, fp in new_fps.items()
        if model.function_fingerprints.get(name) != fp
    )

    if not stale:
        # Pure parameter-value edit: the IR is bit-identical (plain params
        # and grid levels load from the params buffer), so only the layout's
        # default values — and the parallel engines' grid metadata — move.
        _swap_metadata(model, new_composition, info, layout)
        _merge_grid_searches(model, generator.grid_searches)
        _invalidate_engines(model)
        elapsed = time.perf_counter() - started
        stats.recompile_seconds += elapsed
        return {
            "mode": "params-only",
            "changed": sorted(changed_set),
            "relowered": [],
            "seconds": elapsed,
        }

    flags = model.flags or {}
    analysis_manager = AnalysisManager(enabled=bool(flags.get("analysis_cache", True)))
    model.pipeline.run(patch_module, analysis_manager)

    lowerer = PythonCodeGenerator(
        patch_module,
        structured=bool(flags.get("structured_codegen", True)),
        analysis_manager=analysis_manager if analysis_manager.enabled else None,
        sanitize=bool(flags.get("sanitize", False)),
    )
    # Unchanged nodes link in from the previous compile: their declarations
    # resolve to the existing compiled callables through the exec namespace.
    extra_symbols = {
        lowerer._py_name(fn): model._compiled[fn.name]
        for fn in patch_module.functions.values()
        if fn.is_declaration and not fn.intrinsic_name
    }
    compiled = lowerer.compile(extra_symbols=extra_symbols)
    analysis_manager.clear()
    model.pipeline.analysis_manager = None

    _graft_functions(model.module, patch_module)
    model._compiled.update(compiled)
    model.function_fingerprints.update(new_fps)
    _swap_metadata(model, new_composition, info, layout)
    _merge_grid_searches(model, generator.grid_searches)
    # The stored source and unit keys describe the original full compile;
    # a patched artifact is never written back to the store.
    model.source = None
    _invalidate_engines(model)

    elapsed = time.perf_counter() - started
    stats.artifact_patches += len(stale)
    stats.recompile_seconds += elapsed
    return {
        "mode": "patched",
        "changed": sorted(changed_set),
        "relowered": stale,
        "seconds": elapsed,
    }
