"""Code specialisation utilities (paper section 3.4.1).

Two forms of specialisation are provided:

* :func:`emit_library_function` — emit a *standalone* IR function for one
  library function instance, with a chosen subset of its parameters exposed
  as arguments and the rest baked as constants.  This is the monomorphic
  specialisation the paper describes for the framework's standard library and
  it is what the clone-detection study of Figure 3 compares (the DDM and LCA
  accumulation kernels under particular parameter bindings).

* :func:`specialize_on_buffer` — given a function that loads read-only values
  from a parameter buffer (e.g. the grid-search evaluation kernel), replace
  every load at a constant offset with the actual value from the buffer and
  re-optimise.  The result is a closed-form kernel on which floating-point
  VRP, SCEV and adaptive mesh refinement can reason about concrete parameter
  values (Figures 2 and the §4.2 convergence analysis).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cogframe.functions.base import BaseFunction, EmitContext
from ..errors import CompilationError
from ..ir import (
    F64,
    Argument,
    Constant,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    PointerType,
    Value,
    const_float,
)
from ..ir.instructions import GEP, Load
from ..passes.cloning import clone_function
from ..passes.pass_manager import build_standard_pipeline


class _StandaloneEmitContext(EmitContext):
    """EmitContext whose parameters are function arguments or baked constants."""

    def __init__(
        self,
        builder: IRBuilder,
        function_obj: BaseFunction,
        param_args: Dict[str, Value],
        state_args: Dict[str, List[Value]],
        rng_pointer: Optional[Value],
    ):
        self.builder = builder
        self._function_obj = function_obj
        self._param_args = param_args
        self._state_args = state_args
        self._rng_pointer = rng_pointer
        self._stored_state: Dict[str, List[Value]] = {}

    def param(self, name: str) -> List[Value]:
        if name in self._param_args:
            return [self._param_args[name]]
        value = self._function_obj.params[name]
        flat = np.atleast_1d(np.asarray(value, dtype=float)).ravel()
        return [self.builder.f64(float(v)) for v in flat]

    def param_scalar(self, name: str) -> Value:
        values = self.param(name)
        if len(values) != 1:
            raise CompilationError(f"parameter {name!r} is not a scalar")
        return values[0]

    def load_state(self, name: str) -> List[Value]:
        if name in self._stored_state:
            return list(self._stored_state[name])
        return list(self._state_args[name])

    def store_state(self, name: str, values: Sequence[Value]) -> None:
        self._stored_state[name] = list(values)

    def rng_ptr(self) -> Value:
        if self._rng_pointer is None:
            raise CompilationError("this specialisation has no PRNG state argument")
        return self._rng_pointer

    def constant(self, value: float) -> Value:
        return self.builder.f64(float(value))


def emit_library_function(
    function_obj: BaseFunction,
    input_size: int,
    module: Optional[Module] = None,
    name: Optional[str] = None,
    param_args: Sequence[str] = (),
    expose_state: bool = True,
) -> Function:
    """Emit a standalone IR function for one library-function instance.

    The emitted signature is::

        double <name>(double in0..inN-1, [double <state>...], [double <param>...], [double* rng])

    State entries (e.g. an integrator's previous value) become leading
    arguments when ``expose_state`` is true; parameters named in
    ``param_args`` become trailing arguments; all other parameters are baked
    as constants.  The function returns the first output element.
    """
    module = module or Module(f"{function_obj.name}_specialisations")
    name = name or f"{function_obj.name}_kernel"

    state_spec = function_obj.state_spec(input_size) if expose_state else {}
    state_sizes = {k: np.asarray(v).ravel().size for k, v in state_spec.items()}

    arg_types: List = [F64] * input_size
    arg_names = [f"in{i}" for i in range(input_size)]
    for state_name, size in state_sizes.items():
        arg_types += [F64] * size
        arg_names += [f"{state_name}{i}" if size > 1 else state_name for i in range(size)]
    for param_name in param_args:
        arg_types.append(F64)
        arg_names.append(param_name)
    needs_rng = function_obj.needs_rng
    if needs_rng:
        arg_types.append(PointerType(F64))
        arg_names.append("rng_state")

    fn = module.add_function(name, FunctionType(F64, arg_types), arg_names)
    block = fn.append_block("entry")
    builder = IRBuilder(block)

    inputs = list(fn.args[:input_size])
    cursor = input_size
    state_args: Dict[str, List[Value]] = {}
    for state_name, size in state_sizes.items():
        state_args[state_name] = list(fn.args[cursor : cursor + size])
        cursor += size
    param_arg_values: Dict[str, Value] = {}
    for param_name in param_args:
        param_arg_values[param_name] = fn.args[cursor]
        cursor += 1
    rng_pointer = fn.args[cursor] if needs_rng else None

    ctx = _StandaloneEmitContext(builder, function_obj, param_arg_values, state_args, rng_pointer)
    outputs = function_obj.emit(ctx, inputs)
    builder.ret(outputs[0])
    return fn


def specialize_on_buffer(
    function: Function,
    buffer_arg_index: int,
    buffer_values: Sequence[float],
    new_name: Optional[str] = None,
    opt_level: int = 2,
    module: Optional[Module] = None,
) -> Function:
    """Bake the contents of a read-only buffer argument into a function.

    Every ``load`` whose address is a chain of constant-index GEPs rooted at
    argument ``buffer_arg_index`` is replaced by the corresponding constant
    from ``buffer_values``; the clone is then re-optimised.  Loads at
    non-constant offsets are left untouched.
    """
    scratch = module or Module(f"{function.name}_specialised")
    target = clone_function(function, new_name or f"{function.name}_spec", scratch)
    buffer_arg = target.args[buffer_arg_index]

    def constant_offset(value: Value) -> Optional[int]:
        """Slot offset if ``value`` is a constant-index GEP chain from the buffer."""
        if value is buffer_arg:
            return 0
        if isinstance(value, GEP):
            base = constant_offset(value.pointer)
            if base is None:
                return None
            indices = []
            for idx in value.indices:
                if not isinstance(idx, Constant):
                    return None
                indices.append(int(idx.value))
            from ..backends.runtime import gep_offset

            return base + gep_offset(value.pointer.type.pointee, indices)
        return None

    replaced = 0
    for block in list(target.blocks):
        for instr in list(block.instructions):
            if not isinstance(instr, Load):
                continue
            offset = constant_offset(instr.pointer)
            if offset is None or offset >= len(buffer_values):
                continue
            instr.replace_all_uses_with(const_float(float(buffer_values[offset])))
            instr.erase()
            replaced += 1
    build_standard_pipeline(opt_level, verify="off").run(scratch)
    target.attributes["specialised_loads"] = replaced
    return target
