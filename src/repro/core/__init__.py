"""repro.core — the Distill compiler.

* :mod:`repro.core.structs` — static data-structure conversion (§3.3).
* :mod:`repro.core.node_codegen` — per-node templates and specialisation (§3.4).
* :mod:`repro.core.codegen` — whole-model code generation, compiled
  scheduling and grid-search regions (§3.4–3.6).
* :mod:`repro.core.reservoir` — reservoir sampling over equal-cost minima.
* :mod:`repro.core.distill` — the public API (:func:`compile_model`,
  :class:`CompiledModel`).
"""

from .codegen import CompiledArtifacts, GridSearchInfo, generate_model_ir
from .distill import ENGINES, CompiledModel, CompileStats, compile_composition, compile_model
from .reservoir import merge_chunk_minima, reservoir_argmin
from .structs import StaticLayout, build_layout

__all__ = [
    "compile_composition",
    "compile_model",
    "CompiledModel",
    "CompileStats",
    "ENGINES",
    "StaticLayout",
    "build_layout",
    "generate_model_ir",
    "CompiledArtifacts",
    "GridSearchInfo",
    "reservoir_argmin",
    "merge_chunk_minima",
]
