"""Per-node code generation: library-function templates to IR (paper §3.4).

Every mechanism becomes one IR function

``node_<name>(params*, state*, prev*, cur*, ext*)``

that reads its inputs from the previous-pass output structure (or from the
flattened external-input buffer for input nodes), evaluates the mechanism's
library-function template fully unrolled over the statically known shapes,
updates its read-write state, and writes its outputs into the current-pass
output structure.  Projection matrices are baked into the IR as constants;
mechanism parameters are loaded from the static parameter structure so the
model can be re-run with different parameter values without recompilation.

Grid-search control mechanisms get two functions instead: an *evaluation
kernel* (one candidate allocation in, scalar cost out — the unit the parallel
and GPU backends distribute) and the node function containing the grid loop
with reservoir-sampling selection; these are emitted by
:mod:`repro.core.codegen` using the :class:`EvalEmitContext` defined here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cogframe.composition import Composition
from ..cogframe.functions.base import EmitContext
from ..cogframe.mechanisms import GridSearchControlMechanism, Mechanism
from ..cogframe.sanitize import SanitizationInfo
from ..errors import CompilationError
from ..ir import (
    F64,
    VOID,
    FunctionType,
    IRBuilder,
    Module,
    PointerType,
    Value,
)
from .structs import StaticLayout


class MechEmitContext(EmitContext):
    """EmitContext backed by the static parameter/state structures."""

    def __init__(
        self,
        builder: IRBuilder,
        layout: StaticLayout,
        mech_name: str,
        params_ptr: Value,
        state_ptr: Value,
    ):
        self.builder = builder
        self.layout = layout
        self.mech_name = mech_name
        self.params_ptr = params_ptr
        self.state_ptr = state_ptr

    # -- helpers --------------------------------------------------------------------
    def _field_values(self, struct_ptr: Value, field: str) -> List[Value]:
        b = self.builder
        struct = struct_ptr.type.pointee
        index = struct.field_index(field)
        ftype = struct.field_type(index)
        field_ptr = b.gep(struct_ptr, [b.i64(0), b.i64(index)], name=field)
        if ftype.is_scalar:
            return [b.load(field_ptr)]
        values = []
        for i in range(ftype.count):
            element_ptr = b.gep(field_ptr, [b.i64(0), b.i64(i)])
            values.append(b.load(element_ptr))
        return values

    def _store_field(self, struct_ptr: Value, field: str, values: Sequence[Value]) -> None:
        b = self.builder
        struct = struct_ptr.type.pointee
        index = struct.field_index(field)
        ftype = struct.field_type(index)
        field_ptr = b.gep(struct_ptr, [b.i64(0), b.i64(index)], name=field)
        if ftype.is_scalar:
            b.store(values[0], field_ptr)
            return
        if len(values) != ftype.count:
            raise CompilationError(
                f"store to {field}: expected {ftype.count} values, got {len(values)}"
            )
        for i, value in enumerate(values):
            b.store(value, b.gep(field_ptr, [b.i64(0), b.i64(i)]))

    # -- EmitContext API ---------------------------------------------------------------
    def param(self, name: str) -> List[Value]:
        return self._field_values(
            self.params_ptr, StaticLayout.param_field(self.mech_name, name)
        )

    def param_scalar(self, name: str) -> Value:
        values = self.param(name)
        if len(values) != 1:
            raise CompilationError(
                f"parameter {name!r} of {self.mech_name!r} is not a scalar"
            )
        return values[0]

    def load_state(self, name: str) -> List[Value]:
        return self._field_values(
            self.state_ptr, StaticLayout.state_field(self.mech_name, name)
        )

    def store_state(self, name: str, values: Sequence[Value]) -> None:
        self._store_field(
            self.state_ptr, StaticLayout.state_field(self.mech_name, name), values
        )

    def rng_ptr(self) -> Value:
        b = self.builder
        struct = self.state_ptr.type.pointee
        index = struct.field_index(StaticLayout.rng_field(self.mech_name))
        field_ptr = b.gep(self.state_ptr, [b.i64(0), b.i64(index)])
        # Pointer to the first slot (key); the intrinsic reads key/counter.
        return b.gep(field_ptr, [b.i64(0), b.i64(0)], name=f"{self.mech_name}_rng")

    def constant(self, value: float) -> Value:
        return self.builder.f64(float(value))


class EvalEmitContext(MechEmitContext):
    """EmitContext for the control evaluation kernel.

    Pipeline mechanisms evaluated inside the grid search use *local* state
    (fresh initial values per evaluation — the per-thread read-write copies
    the paper describes) and a kernel-local PRNG state whose counter is
    derived from the evaluation index.
    """

    def __init__(
        self,
        builder: IRBuilder,
        layout: StaticLayout,
        mech_name: str,
        params_ptr: Value,
        local_rng_ptr: Value,
        initial_state: Dict[str, np.ndarray],
    ):
        super().__init__(builder, layout, mech_name, params_ptr, state_ptr=params_ptr)
        self._local_rng_ptr = local_rng_ptr
        self._initial_state = initial_state
        self._local_state: Dict[str, List[Value]] = {}

    def load_state(self, name: str) -> List[Value]:
        if name in self._local_state:
            return list(self._local_state[name])
        initial = np.asarray(self._initial_state[name], dtype=float).ravel()
        return [self.builder.f64(float(v)) for v in initial]

    def store_state(self, name: str, values: Sequence[Value]) -> None:
        self._local_state[name] = list(values)

    def rng_ptr(self) -> Value:
        return self._local_rng_ptr


def node_function_type(layout: StaticLayout) -> FunctionType:
    """Signature shared by every node function."""
    return FunctionType(
        VOID,
        [
            PointerType(layout.params_struct),
            PointerType(layout.state_struct),
            PointerType(layout.output_struct),
            PointerType(layout.output_struct),
            PointerType(F64),
        ],
    )


def emit_port_values(
    builder: IRBuilder,
    layout: StaticLayout,
    composition: Composition,
    mech: Mechanism,
    prev_ptr: Value,
    ext_ptr: Value,
) -> List[Value]:
    """Emit the concatenated input variable of ``mech`` (paper §3.3 signals).

    Each port starts from the external stimulus (input nodes only) and adds
    one term per incoming projection; projection matrices are baked constants,
    sender values are loads from the previous-pass output structure.
    """
    b = builder
    port_values: Dict[str, List[Optional[Value]]] = {
        port.name: [None] * port.size for port in mech.input_ports
    }

    def accumulate(port: str, index: int, value: Value) -> None:
        existing = port_values[port][index]
        port_values[port][index] = value if existing is None else b.fadd(existing, value)

    # External stimulus drives the first port of input nodes.
    if mech.name in composition.input_nodes:
        offset, size = layout.input_layout[mech.name]
        first_port = mech.input_ports[0].name
        for i in range(size):
            ptr = b.gep(ext_ptr, [b.i64(offset + i)], name=f"ext_{mech.name}_{i}")
            accumulate(first_port, i, b.load(ptr))

    # Projections from other nodes (previous-pass values).
    out_struct = layout.output_struct
    for projection in composition.incoming_projections(mech):
        sender = projection.sender.name
        field_index = out_struct.field_index(StaticLayout.output_field(sender))
        field_type = out_struct.field_type(field_index)
        field_ptr = b.gep(prev_ptr, [b.i64(0), b.i64(field_index)], name=f"prev_{sender}")

        def load_sender(i: int) -> Value:
            if field_type.is_scalar:
                value = b.load(field_ptr)
            else:
                value = b.load(b.gep(field_ptr, [b.i64(0), b.i64(i)]))
            value.metadata["reads_output_of"] = sender
            return value

        start = 0
        length = projection.sender.output_size
        if projection.sender_slice is not None:
            start, length = projection.sender_slice
        sender_values = [load_sender(start + i) for i in range(length)]

        matrix = projection.matrix
        if matrix is None:
            contributions = sender_values
        elif np.isscalar(matrix):
            scale = b.f64(float(matrix))
            contributions = [b.fmul(scale, v) for v in sender_values]
        else:
            matrix = np.asarray(matrix, dtype=float)
            contributions = []
            for row in range(matrix.shape[0]):
                acc: Optional[Value] = None
                for col in range(matrix.shape[1]):
                    term = b.fmul(b.f64(float(matrix[row, col])), sender_values[col])
                    acc = term if acc is None else b.fadd(acc, term)
                contributions.append(acc if acc is not None else b.f64(0.0))
        for i, contribution in enumerate(contributions):
            accumulate(projection.port, i, contribution)

    # Flatten in port declaration order, filling untouched elements with 0.0.
    variable: List[Value] = []
    for port in mech.input_ports:
        for value in port_values[port.name]:
            variable.append(value if value is not None else b.f64(0.0))
    return variable


def store_outputs(
    builder: IRBuilder,
    layout: StaticLayout,
    mech_name: str,
    cur_ptr: Value,
    values: Sequence[Value],
) -> None:
    """Write a node's output values into the current-pass output structure."""
    b = builder
    struct = layout.output_struct
    field_index = struct.field_index(StaticLayout.output_field(mech_name))
    field_type = struct.field_type(field_index)
    field_ptr = b.gep(cur_ptr, [b.i64(0), b.i64(field_index)], name=f"cur_{mech_name}")
    expected = 1 if field_type.is_scalar else field_type.count
    if len(values) != expected:
        raise CompilationError(
            f"node {mech_name!r}: function template produced {len(values)} outputs, "
            f"layout expects {expected}"
        )
    if field_type.is_scalar:
        b.store(values[0], field_ptr)
        return
    for i, value in enumerate(values):
        b.store(value, b.gep(field_ptr, [b.i64(0), b.i64(i)]))


def emit_node_function(
    module: Module,
    layout: StaticLayout,
    composition: Composition,
    info: SanitizationInfo,
    mech: Mechanism,
) -> "Function":
    """Emit the ``node_<name>`` function for a non-control mechanism."""
    if isinstance(mech, GridSearchControlMechanism):
        raise CompilationError(
            "control mechanisms are emitted by the whole-model code generator"
        )
    fn = module.add_function(
        f"node_{mech.name}",
        node_function_type(layout),
        ["params", "state", "prev", "cur", "ext"],
    )
    fn.attributes["alwaysinline"] = True
    block = fn.append_block("entry")
    builder = IRBuilder(block)
    builder.current_source_node = mech.name
    params_ptr, state_ptr, prev_ptr, cur_ptr, ext_ptr = fn.args

    variable = emit_port_values(builder, layout, composition, mech, prev_ptr, ext_ptr)
    ctx = MechEmitContext(builder, layout, mech.name, params_ptr, state_ptr)
    outputs = mech.function.emit(ctx, variable)
    if len(outputs) != info.mechanisms[mech.name].output_size:
        raise CompilationError(
            f"node {mech.name!r}: template produced {len(outputs)} outputs, "
            f"sanitization saw {info.mechanisms[mech.name].output_size}"
        )
    store_outputs(builder, layout, mech.name, cur_ptr, outputs)
    builder.ret()
    return fn
