"""Distill's compilation core: lower a composition to IR and run it.

Typical usage goes through the driver facade (see DESIGN.md)::

    import repro
    from repro.models.predator_prey import build_predator_prey, default_inputs

    model = build_predator_prey("m")
    engine = repro.compile(model, target="compiled", pipeline="default<O2>")
    results = engine.run(default_inputs(4), num_trials=16)

This module holds the actual compilation stages
(:func:`compile_composition`) and the :class:`CompiledModel` artifact
bundle.  :func:`compile_model` remains as a deprecated shim over
:func:`compile_composition`.

The compiled model exposes the same result structure as the interpretive
reference runner, so downstream analysis code does not care which engine
produced the numbers (paper design principle 1: no model changes).
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..backends.interp import Interpreter
from ..backends.pycodegen import PythonCodeGenerator
from ..cogframe import conditions as cond
from ..cogframe.composition import Composition
from ..cogframe.mechanisms import GridSearchControlMechanism
from ..cogframe.runner import RunResults, TrialResult, normalize_inputs
from ..cogframe.sanitize import SanitizationInfo, sanitize
from ..driver.engines import get_engine
from ..driver.pipeline import resolve_pipeline
from ..passes.pass_manager import PassManager
from .codegen import CompiledArtifacts, generate_model_ir
from .structs import StaticLayout, build_layout

#: Deprecated: the built-in engine names.  Backends now self-register with
#: :mod:`repro.driver.engines`; use :func:`repro.list_engines` instead.
ENGINES = ("compiled", "ir-interp", "per-node", "mcpu", "gpu-sim")


@dataclass
class CompileStats:
    """Wall-clock breakdown of a compilation (Figure 7 "Compilation" bars)."""

    sanitize_seconds: float = 0.0
    layout_seconds: float = 0.0
    codegen_seconds: float = 0.0
    optimize_seconds: float = 0.0
    lower_seconds: float = 0.0
    instructions_before: int = 0
    instructions_after: int = 0
    #: Analysis-manager cache counters for the optimisation pipeline (hits
    #: are analyses served from cache, misses were computed; skipped_passes
    #: counts per-function pass visits elided by clean-run records).
    analysis_hits: int = 0
    analysis_misses: int = 0
    analysis_invalidations: int = 0
    analysis_skipped_passes: int = 0
    #: Artifact-store counters for this compile: ``artifact_hits`` counts
    #: store entries that skipped work (a model-entry hit skips sanitize
    #: through codegen entirely; an optimize-entry hit skips the pipeline),
    #: ``artifact_misses`` counts lookups that fell through to a real
    #: compile, ``artifact_writes`` counts entries published, and
    #: ``artifact_patches`` counts functions replaced in-place by
    #: incremental recompiles of this model.
    artifact_hits: int = 0
    artifact_misses: int = 0
    artifact_writes: int = 0
    artifact_patches: int = 0
    #: Wall-clock spent in incremental recompiles of this model (cumulative).
    recompile_seconds: float = 0.0
    #: Functions the structured emitter could not express and lowered through
    #: the legacy dispatch ladder, plus the relooper's reason per function
    #: (reported by the Figure 8 harness).
    dispatch_fallbacks: List[str] = field(default_factory=list)
    dispatch_fallback_reasons: Dict[str, str] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return (
            self.sanitize_seconds
            + self.layout_seconds
            + self.codegen_seconds
            + self.optimize_seconds
            + self.lower_seconds
        )


class CompiledModel:
    """A composition compiled to IR plus the drivers for every engine."""

    def __init__(
        self,
        composition: Composition,
        info: SanitizationInfo,
        layout: StaticLayout,
        artifacts: CompiledArtifacts,
        stats: CompileStats,
        compiled_functions: Dict[str, object],
        pipeline: Optional[PassManager] = None,
        opt_level: Optional[int] = None,
        flags: Optional[Dict[str, object]] = None,
        seed: int = 0,
    ):
        self.composition = composition
        self.info = info
        self.layout = layout
        self.artifacts = artifacts
        self.module = artifacts.module
        self.pipeline = pipeline
        self.pipeline_text = pipeline.describe() if pipeline is not None else ""
        self.opt_level = opt_level
        self.flags = dict(flags or {})
        self.seed = int(seed)
        self.stats = stats
        #: ``AnalysisManager.cache_info()`` of the compile that produced this
        #: model (filled in by :func:`compile_composition`).
        self.analysis_stats: Dict[str, object] = {}
        #: The generated Python source of the compiled backend (stored so the
        #: artifact store can replay it without re-lowering).
        self.source: Optional[str] = None
        #: Per-function *compile unit* keys of the pre-optimization module
        #: (see :func:`repro.driver.artifacts.unit_fingerprints`); describes
        #: the original full compile and is what the optimize-artifact entry
        #: was keyed on.
        self.unit_fingerprints: Dict[str, str] = {}
        #: Per-function structural fingerprints of the pre-optimization
        #: module.  The incremental recompiler compares freshly regenerated
        #: functions against these to classify an edit as param-buffer-only
        #: (identical IR) versus requiring a re-lower.
        self.function_fingerprints: Dict[str, str] = {}
        self._compiled = compiled_functions
        self._engine_instances: Dict[str, object] = {}
        self._engine_lock = threading.Lock()

    # -- introspection -------------------------------------------------------------
    def print_ir(self) -> str:
        from ..ir.printer import print_module

        return print_module(self.module)

    def function(self, name: str):
        """The compiled Python callable for an IR function."""
        return self._compiled[name]

    @property
    def grid_searches(self):
        return self.artifacts.grid_searches

    # -- buffers ---------------------------------------------------------------------
    def allocate_buffers(self, inputs: Sequence, num_trials: int, seed: int):
        layout = self.layout
        input_sets = normalize_inputs(self.composition, inputs)
        rows = len(input_sets)
        flat_inputs: List[float] = []
        for entry in input_sets:
            row = [0.0] * max(layout.input_size, 1)
            for name, (offset, size) in layout.input_layout.items():
                values = np.asarray(entry[name], dtype=float).ravel()
                row[offset : offset + size] = [float(v) for v in values]
            flat_inputs.extend(row)
        buffers = {
            "params": layout.allocate_params(),
            "state": layout.allocate_state(seed),
            "prev": layout.allocate_outputs(),
            "cur": layout.allocate_outputs(),
            "inputs": flat_inputs if flat_inputs else [0.0],
            "results": [0.0] * max(num_trials * layout.result_record_size(), 1),
            "monitor": [0.0] * max(num_trials * layout.monitor_record_size(), 1),
            "rows": rows,
        }
        return buffers

    def _collect_results(self, buffers, num_trials: int, engine: str) -> RunResults:
        layout = self.layout
        results = RunResults(model_name=self.composition.name, engine=engine)
        record_size = layout.result_record_size()
        for trial in range(num_trials):
            base = trial * record_size
            record = buffers["results"][base : base + record_size]
            outputs = {
                name: np.array(record[offset : offset + size])
                for name, (offset, size) in layout.result_layout.items()
            }
            passes = int(record[layout.result_size])
            monitored: Dict[str, List[np.ndarray]] = {}
            if layout.monitor_size:
                for name, (offset, size) in layout.monitor_layout.items():
                    series = []
                    for p in range(passes):
                        slot = (trial * layout.max_passes + p) * layout.monitor_size + offset
                        series.append(np.array(buffers["monitor"][slot : slot + size]))
                    monitored[name] = series
            results.trials.append(TrialResult(outputs=outputs, passes=passes, monitored=monitored))
        return results

    # -- execution ----------------------------------------------------------------------
    def run(
        self,
        inputs: Sequence,
        num_trials: Optional[int] = None,
        seed: int = 0,
        engine: str = "compiled",
        workers: Optional[int] = None,
    ) -> RunResults:
        """Run the compiled model.

        ``engine`` selects the execution strategy:

        * ``"compiled"``   — whole-model compiled code (CPython-DISTILL);
        * ``"ir-interp"``  — the per-instruction IR interpreter (generic-JIT
          stand-in baseline);
        * ``"per-node"``   — compiled nodes, Python scheduling
          (CPython-DISTILL-per-node, Figure 5b);
        * ``"mcpu"``       — grid-search evaluations partitioned over worker
          processes (DISTILL-mCPU, Figure 5c);
        * ``"gpu-sim"``    — data-parallel SIMT simulation of the evaluation
          kernel (DISTILL-GPU, Figures 5c and 6).

        Engines are resolved through the driver's backend registry
        (:mod:`repro.driver.engines`), so backends registered by user code
        are accepted as well; :func:`repro.list_engines` enumerates them.

        Engine bindings are memoized per model (:meth:`engine_instance`), so
        consecutive ``run`` calls reuse persistent engine state — notably the
        mcpu worker pool and the gpu-sim vectorised lane arrays.
        """
        instance = self.engine_instance(engine)
        options: Dict[str, object] = {}
        if workers is not None:
            options["workers"] = workers
        return instance.run(inputs, num_trials=num_trials, seed=seed, **options)

    def run_batch(
        self,
        inputs_batch: Sequence[Sequence],
        num_trials: Union[int, Sequence[Optional[int]], None] = None,
        seed: Union[int, Sequence[int]] = 0,
        engine: str = "compiled",
        workers: Optional[int] = None,
    ) -> List[RunResults]:
        """Run several independent input batches against this compiled model.

        Semantically equivalent to one :meth:`run` per element (results are
        bitwise identical); parallel engines execute the elements in lockstep
        and dispatch the whole batch's grid evaluations per scheduler step in
        one pool round-trip.  See :meth:`EngineInstance.run_batch`.
        """
        instance = self.engine_instance(engine)
        options: Dict[str, object] = {}
        if workers is not None:
            options["workers"] = workers
        return instance.run_batch(
            inputs_batch, num_trials=num_trials, seed=seed, **options
        )

    def engine_instance(self, engine: str = "compiled"):
        """The cached :class:`EngineInstance` binding this model to ``engine``.

        One instance exists per (model, engine name); it owns whatever
        persistent state the engine keeps between runs (worker pools,
        vectorised lane state).  Use :meth:`close_engines` to release that
        state explicitly.
        """
        with self._engine_lock:
            instance = self._engine_instances.get(engine)
        if instance is not None:
            return instance
        prepared = get_engine(engine).prepare(self)
        with self._engine_lock:
            instance = self._engine_instances.setdefault(engine, prepared)
        if instance is not prepared:
            prepared.close()  # lost the race; drop the duplicate's resources
        return instance

    def close_engines(self) -> None:
        """Release resources held by cached engine instances (worker pools)."""
        with self._engine_lock:
            instances = list(self._engine_instances.values())
        for instance in instances:
            instance.close()

    def reset_engine(self, engine: str) -> None:
        """Drop the cached binding for ``engine``, hard-releasing its pool.

        The serving daemon's retry path calls this after a suspected
        worker-pool failure so the next :meth:`engine_instance` call starts
        from a clean binding.  The instance's ``reset()`` (terminate
        semantics) is preferred over ``close()`` — a pool with a lost
        in-flight task never finishes a graceful join.
        """
        with self._engine_lock:
            instance = self._engine_instances.pop(engine, None)
        if instance is None:
            return
        reset = getattr(instance, "reset", None)
        (reset if reset is not None else instance.close)()

    # -- incremental recompilation ------------------------------------------------
    def recompile(self, composition=None, changed=None, store=None):
        """Re-lower only the functions affected by an edit, in place.

        ``composition`` is an edited composition (defaults to this model's
        own, for in-place edits made through :meth:`set_parameter` /
        :meth:`set_projection_matrix`); ``changed`` optionally names the
        edited mechanisms explicitly, skipping the structural diff.  When the
        edit is layout-compatible, only the changed node functions and the
        (cheap) scheduler functions are regenerated and patched into the
        live artifact; otherwise this transparently falls back to a full
        compile and adopts its result.  Either way ``self`` remains the
        valid handle.  Returns a report dict (see
        :func:`repro.core.patch.recompile_model`).
        """
        from .patch import recompile_model

        return recompile_model(self, composition=composition, changed=changed, store=store)

    def set_parameter(self, node: str, param: str, value) -> Dict[str, object]:
        """Edit one function parameter of ``node`` and incrementally recompile."""
        mech = self.composition.mechanisms[node]
        if param not in mech.function.params:
            raise KeyError(f"mechanism {node!r} has no parameter {param!r}")
        mech.function.params[param] = value
        return self.recompile(changed={node})

    def set_projection_matrix(
        self, sender: str, receiver: str, matrix, port: str = "input"
    ) -> Dict[str, object]:
        """Edit a projection's matrix and incrementally recompile the receiver."""
        for projection in self.composition.projections:
            if (
                projection.sender.name == sender
                and projection.receiver.name == receiver
                and projection.port == port
            ):
                projection.matrix = matrix
                # Only the receiver's node function bakes the matrix.
                return self.recompile(changed={receiver})
        raise KeyError(f"no projection {sender!r} -> {receiver!r}.{port}")

    # -- engine implementations --------------------------------------------------------------
    def _model_args(self, buffers, num_trials: int):
        return [
            (buffers["params"], 0),
            (buffers["state"], 0),
            (buffers["prev"], 0),
            (buffers["cur"], 0),
            (buffers["inputs"], 0),
            (buffers["results"], 0),
            (buffers["monitor"], 0),
            num_trials,
            buffers["rows"],
        ]

    def _run_whole_compiled(self, buffers, num_trials: int) -> None:
        run_model = self._compiled["run_model"]
        run_model(*self._model_args(buffers, num_trials))

    def _run_whole_interp(self, buffers, num_trials: int) -> None:
        interp = Interpreter(self.module)
        interp.call("run_model", self._model_args(buffers, num_trials))

    def _run_per_node(self, buffers, num_trials: int) -> None:
        """Compiled node functions driven by a Python scheduler (Figure 5b)."""
        layout = self.layout
        composition = self.composition
        params = (buffers["params"], 0)
        state_buf = buffers["state"]
        state = (state_buf, 0)
        prev_buf, cur_buf = buffers["prev"], buffers["cur"]
        record_size = layout.result_record_size()

        node_fns = {
            name: self._compiled[f"node_{name}"] for name in layout.execution_order
        }
        count_offsets = {
            name: layout.state_struct.field_slot_offset(
                layout.state_struct.field_index(StaticLayout.count_field(name))
            )
            for name in layout.execution_order
        }
        epoch_offsets = {
            name: layout.state_struct.field_slot_offset(
                layout.state_struct.field_index(StaticLayout.state_field(name, "eval_epoch"))
            )
            for name in layout.execution_order
            if isinstance(composition.mechanisms[name], GridSearchControlMechanism)
        }

        for trial in range(num_trials):
            # Reset per-trial state and the double buffers.
            for offset, values in layout.state_reset_entries:
                state_buf[offset : offset + len(values)] = values
            for i in range(len(prev_buf)):
                prev_buf[i] = 0.0
                cur_buf[i] = 0.0
            row = trial % buffers["rows"]
            ext = (buffers["inputs"], row * layout.input_size)

            call_counts = {name: 0 for name in layout.execution_order}
            passes_run = 0
            for pass_idx in range(layout.max_passes):
                scheduler_state = cond.SchedulerState(
                    pass_index=pass_idx,
                    trial_index=trial,
                    call_counts=dict(call_counts),
                    outputs=self._outputs_view(prev_buf),
                )
                if pass_idx > 0 and composition.termination.is_satisfied(scheduler_state):
                    break
                for name in layout.execution_order:
                    if not composition.conditions[name].is_satisfied(scheduler_state):
                        continue
                    if name in epoch_offsets:
                        state_buf[epoch_offsets[name]] = float(
                            trial * layout.max_passes + pass_idx
                        )
                    node_fns[name](params, state, (prev_buf, 0), (cur_buf, 0), ext)
                    call_counts[name] += 1
                    state_buf[count_offsets[name]] += 1.0
                prev_buf[:] = cur_buf
                if layout.monitor_size:
                    record = (trial * layout.max_passes + pass_idx) * layout.monitor_size
                    for node_name, (offset, size) in layout.monitor_layout.items():
                        out_offset, _ = layout.output_offsets[node_name]
                        buffers["monitor"][record + offset : record + offset + size] = prev_buf[
                            out_offset : out_offset + size
                        ]
                passes_run = pass_idx + 1
            base = trial * record_size
            for node_name, (offset, size) in layout.result_layout.items():
                out_offset, _ = layout.output_offsets[node_name]
                buffers["results"][base + offset : base + offset + size] = prev_buf[
                    out_offset : out_offset + size
                ]
            buffers["results"][base + layout.result_size] = float(passes_run)

    def _outputs_view(self, prev_buf) -> Dict[str, np.ndarray]:
        return {
            name: np.array(prev_buf[offset : offset + size])
            for name, (offset, size) in self.layout.output_offsets.items()
        }


def compile_composition(
    composition: Composition,
    pipeline: Union[str, PassManager] = "default<O2>",
    seed: int = 0,
    verify: Union[str, bool, None] = None,
    flags: Optional[Dict[str, object]] = None,
    opt_level: Optional[int] = None,
    store=None,
) -> CompiledModel:
    """Compile ``composition`` with Distill.

    The stages mirror the paper: sanitization-run mining (types and shapes),
    static data-structure conversion, IR generation for every node and the
    scheduler, the optimisation ``pipeline`` (a textual description such as
    ``"default<O2>,licm"`` or a prebuilt :class:`PassManager`) and lowering
    to the execution engines.

    ``store`` selects the content-addressed artifact store (see
    :mod:`repro.driver.artifacts`): ``None`` consults the
    ``REPRO_ARTIFACT_DIR`` environment variable, ``False`` disables the
    store, a path or :class:`~repro.driver.artifacts.ArtifactStore` uses
    that store.  On a model-entry hit the whole compile — sanitize, layout,
    IR generation, optimisation and lowering — is replaced by decoding the
    stored module and re-executing the stored Python source; on an
    optimize-entry hit (same IR under a different model key, e.g. a sibling
    model differing only in plain parameter values) only the optimisation
    pipeline is skipped.

    ``verify`` is the module-verification policy (``"each"``, ``"boundary"``
    or ``"off"``; legacy booleans accepted).  With the default ``None``, a
    textual pipeline gets ``"boundary"`` (verify once after IR generation
    and once after the last pass, not after every pass) and a prebuilt
    :class:`PassManager` keeps its own policy.  An explicit policy always
    wins; a caller-supplied manager is then rewrapped rather than mutated.

    ``flags`` is an optional mapping of auxiliary compilation options; it is
    recorded on the returned model and participates in
    :class:`repro.Session` cache keys.  ``opt_level`` is informational (set
    by the deprecated :func:`compile_model` shim).

    Each compile owns one :class:`repro.analysis.manager.AnalysisManager`:
    analyses (dominator trees, loop info, ...) computed by one pass are
    reused by later passes until invalidated, and its hit/miss counters are
    recorded in :class:`CompileStats` and on ``CompiledModel.analysis_stats``
    (reported by the Figure 7 harness).  Pass ``flags={"analysis_cache":
    False}`` for the cold reference configuration that recomputes every
    analysis per pass — used by the differential tests and benchmarks.
    """
    from ..analysis.manager import AnalysisManager
    from ..driver.artifacts import (
        model_artifact_key,
        optimize_artifact_key,
        resolve_store,
        unit_fingerprints,
    )
    from ..driver.session import _pipeline_fingerprint
    from ..ir.fingerprint import function_fingerprint
    from ..ir.serialize import decode_module, encode_module

    pipeline = resolve_pipeline(pipeline, verify=verify)
    store = resolve_store(store)

    stats = CompileStats()

    structured = bool((flags or {}).get("structured_codegen", True))
    sanitize_mode = bool((flags or {}).get("sanitize", False))
    if sanitize_mode and not structured:
        raise ValueError(
            'flags={"sanitize": True} requires the structured emitter; '
            'it cannot be combined with flags={"structured_codegen": False}'
        )

    # Warm-path: a model-entry hit replays the entire compile from the store
    # (decoded optimized IR + stored generated source) without running any of
    # the stages below.
    model_key = None
    if store is not None:
        model_key = model_artifact_key(composition, pipeline, seed, flags)
        entry = store.get(model_key)
        if entry is not None:
            model = _model_from_store_entry(
                entry,
                composition=composition,
                pipeline=pipeline,
                opt_level=opt_level,
                flags=flags,
                seed=seed,
                stats=stats,
            )
            if model is not None:
                return model
        stats.artifact_misses += 1

    analysis_manager = AnalysisManager(
        enabled=bool((flags or {}).get("analysis_cache", True))
    )

    start = time.perf_counter()
    info = sanitize(composition, seed=seed)
    stats.sanitize_seconds = time.perf_counter() - start

    start = time.perf_counter()
    layout = build_layout(composition, info)
    stats.layout_seconds = time.perf_counter() - start

    start = time.perf_counter()
    artifacts = generate_model_ir(composition, info, layout)
    stats.codegen_seconds = time.perf_counter() - start
    stats.instructions_before = artifacts.module.instruction_count()

    # Per-function compile units of the *pre-optimization* module: the raw
    # structural fingerprints classify later edits (incremental recompiles),
    # the transitive unit keys address the optimize artifact.  Models that
    # differ only in plain parameter values (loaded from the params buffer,
    # not baked) generate identical IR and therefore share optimize entries.
    pipeline_fp = _pipeline_fingerprint(pipeline)
    function_fps = {
        name: function_fingerprint(fn)
        for name, fn in artifacts.module.functions.items()
    }
    unit_fps = unit_fingerprints(artifacts.module, pipeline_fp, flags)

    optimized_entry = None
    opt_key = None
    if store is not None:
        opt_key = optimize_artifact_key(unit_fps)
        optimized_entry = store.get(opt_key)

    if optimized_entry is not None:
        # Optimize-entry hit: swap in the stored optimized module and skip
        # the pipeline (it was verified when first compiled).
        start = time.perf_counter()
        artifacts.module = decode_module(optimized_entry["module"])
        stats.optimize_seconds = time.perf_counter() - start
        stats.instructions_after = artifacts.module.instruction_count()
        stats.artifact_hits += 1
        analysis_stats = analysis_manager.cache_info()
    else:
        if store is not None:
            stats.artifact_misses += 1
        # The pass manager verifies at the policy's boundaries: the freshly
        # generated module is checked before the first pass runs, and the
        # optimised module after the last one.
        start = time.perf_counter()
        pipeline.run(artifacts.module, analysis_manager)
        stats.optimize_seconds = time.perf_counter() - start
        stats.instructions_after = artifacts.module.instruction_count()
        # Cache counters are snapshotted *before* lowering so the Figure 7
        # rows and the pinned analysis-manager tests keep describing the
        # optimisation pipeline alone (lowering re-reads domtree/loopinfo
        # from the same cache).
        stats.analysis_hits = analysis_manager.hits
        stats.analysis_misses = analysis_manager.misses
        stats.analysis_invalidations = analysis_manager.invalidations
        stats.analysis_skipped_passes = analysis_manager.skipped_passes
        analysis_stats = analysis_manager.cache_info()
        if store is not None:
            store.put(
                opt_key,
                {
                    "format": 1,
                    "module": encode_module(artifacts.module),
                    "instructions_after": stats.instructions_after,
                },
            )
            stats.artifact_writes += 1

    # Lowering: the structured emitter reconstructs loops/conditionals from
    # the dominator-tree and loop-info analyses the pipeline already cached.
    # ``flags={"structured_codegen": False}`` selects the legacy dispatch
    # ladder (kept for the structured-vs-dispatch differential tests and the
    # Figure 8 report).
    start = time.perf_counter()
    generator = PythonCodeGenerator(
        artifacts.module,
        structured=structured,
        analysis_manager=analysis_manager if analysis_manager.enabled else None,
        sanitize=sanitize_mode,
    )
    source = generator.generate_source()
    compiled_functions = generator.exec_source(source)
    stats.lower_seconds = time.perf_counter() - start
    stats.dispatch_fallbacks = list(generator.dispatch_fallbacks)
    stats.dispatch_fallback_reasons = dict(generator.dispatch_fallback_reasons)

    # The manager's lifetime is this compile: release the cached analyses
    # (and the pipeline's back-reference) so session-memoized models do not
    # pin dominator trees and range maps that can never be read again.
    analysis_manager.clear()
    pipeline.analysis_manager = None

    model = CompiledModel(
        composition,
        info,
        layout,
        artifacts,
        stats,
        compiled_functions,
        pipeline=pipeline,
        opt_level=opt_level,
        flags=flags,
        seed=seed,
    )
    model.analysis_stats = analysis_stats
    model.source = source
    model.unit_fingerprints = unit_fps
    model.function_fingerprints = function_fps

    if store is not None:
        store.put(
            model_key,
            {
                "format": 1,
                "info": info,
                "layout": layout,
                "grid_searches": artifacts.grid_searches,
                "module": encode_module(artifacts.module),
                "source": source,
                "unit_fingerprints": unit_fps,
                "function_fingerprints": function_fps,
                "instructions_before": stats.instructions_before,
                "instructions_after": stats.instructions_after,
                "dispatch_fallbacks": stats.dispatch_fallbacks,
                "dispatch_fallback_reasons": stats.dispatch_fallback_reasons,
            },
        )
        stats.artifact_writes += 1
    return model


def _model_from_store_entry(
    entry,
    composition: Composition,
    pipeline: PassManager,
    opt_level: Optional[int],
    flags: Optional[Dict[str, object]],
    seed: int,
    stats: CompileStats,
) -> Optional[CompiledModel]:
    """Rebuild a :class:`CompiledModel` from a model-entry store payload.

    Decodes the stored optimized module and re-executes the stored generated
    Python source — no sanitize, layout, IR generation, optimisation or
    source generation runs.  Returns ``None`` when the payload is from an
    incompatible format (treated as a miss by the caller).
    """
    from ..ir.serialize import decode_module

    if not isinstance(entry, dict) or entry.get("format") != 1:
        return None
    try:
        start = time.perf_counter()
        module = decode_module(entry["module"])
        artifacts = CompiledArtifacts(
            module=module,
            layout=entry["layout"],
            grid_searches=entry["grid_searches"],
        )
        generator = PythonCodeGenerator(
            module,
            structured=bool((flags or {}).get("structured_codegen", True)),
            sanitize=bool((flags or {}).get("sanitize", False)),
        )
        compiled_functions = generator.exec_source(entry["source"])
    except Exception:
        return None
    stats.lower_seconds = time.perf_counter() - start
    stats.instructions_before = entry["instructions_before"]
    stats.instructions_after = entry["instructions_after"]
    stats.artifact_hits += 1
    stats.dispatch_fallbacks = list(entry["dispatch_fallbacks"])
    stats.dispatch_fallback_reasons = dict(entry["dispatch_fallback_reasons"])
    pipeline.analysis_manager = None
    model = CompiledModel(
        composition,
        entry["info"],
        artifacts.layout,
        artifacts,
        stats,
        compiled_functions,
        pipeline=pipeline,
        opt_level=opt_level,
        flags=flags,
        seed=seed,
    )
    model.source = entry["source"]
    model.unit_fingerprints = dict(entry["unit_fingerprints"])
    model.function_fingerprints = dict(entry["function_fingerprints"])
    return model


def compile_model(
    composition: Composition,
    opt_level: int = 2,
    seed: int = 0,
    verify: bool = True,
) -> CompiledModel:
    """Deprecated: use :func:`repro.compile` / :meth:`repro.Session.compile`
    (or :func:`compile_composition` for the low-level path) instead.

    Kept as a thin shim so pre-driver call sites continue to work; it maps
    ``opt_level`` onto the ``default<Ok>`` pipeline alias.
    """
    warnings.warn(
        "repro.core.distill.compile_model() is deprecated; use repro.compile()"
        " or repro.Session.compile() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    level = max(0, min(int(opt_level), 3))
    return compile_composition(
        composition,
        pipeline=f"default<O{level}>",
        seed=seed,
        verify="boundary" if verify else "off",
        opt_level=opt_level,
    )
