"""Reservoir sampling over equal-cost minima (paper section 3.3).

When a grid search finds several parameter settings with the same minimal
cost, the convention is to pick one of them uniformly at random.  A dynamic
list of tied candidates would defeat the static data-structure conversion, so
Distill uses reservoir sampling: a single "current best" slot plus a tie
counter, updated in one pass over the candidates.  The same algorithm is

* implemented here in Python (used by the reference runner via
  :meth:`GridSearchControlMechanism.execute` and by the parallel drivers when
  they reduce per-chunk results), and
* emitted as straight-line IR by the whole-model code generator,

so every engine makes identical choices.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple

from ..cogframe.prng import CounterRNG


def reservoir_argmin(
    costs: Iterable[float],
    rng: Optional[CounterRNG] = None,
    uniform: Optional[Callable[[], float]] = None,
) -> Tuple[int, float]:
    """Index and value of the minimum of ``costs`` with random tie-breaking.

    Exactly one uniform draw is consumed per tie encountered (none when the
    minimum is unique), matching the generated IR draw-for-draw.
    """
    if uniform is None:
        if rng is not None:
            uniform = rng.uniform
        else:
            uniform = lambda: 0.0  # noqa: E731 - deterministic first-wins fallback

    best_index = -1
    best_cost = float("inf")
    ties = 0
    for index, cost in enumerate(costs):
        cost = float(cost)
        if cost < best_cost:
            best_cost = cost
            best_index = index
            ties = 1
        elif cost == best_cost:
            ties += 1
            if uniform() < 1.0 / ties:
                best_index = index
    if best_index < 0:
        raise ValueError("reservoir_argmin requires at least one cost")
    return best_index, best_cost


def merge_chunk_minima(
    chunks: Sequence[Tuple[int, float, int]],
) -> Tuple[int, float, int]:
    """Merge per-chunk ``(index, cost, ties)`` results from a partitioned search.

    Used by the multicore driver: each worker returns the reservoir state of
    its segment; the merge keeps the lowest cost and the earliest index, and
    accumulates tie counts so that the overall selection remains unbiased for
    the (measure-zero, in noisy models) case of cross-chunk ties.
    """
    best_index, best_cost, total_ties = -1, float("inf"), 0
    for index, cost, ties in chunks:
        if cost < best_cost:
            best_index, best_cost, total_ties = index, cost, ties
        elif cost == best_cost:
            total_ties += ties
            if best_index < 0 or index < best_index:
                best_index = index
    if best_index < 0:
        raise ValueError("merge_chunk_minima requires at least one chunk")
    return best_index, best_cost, total_ties
