"""Reservoir sampling over equal-cost minima (paper section 3.3).

When a grid search finds several parameter settings with the same minimal
cost, the convention is to pick one of them uniformly at random.  A dynamic
list of tied candidates would defeat the static data-structure conversion, so
Distill uses reservoir sampling: a single "current best" slot plus a tie
counter, updated in one pass over the candidates.  The same algorithm is

* implemented here in Python (used by the reference runner via
  :meth:`GridSearchControlMechanism.execute` and by the parallel drivers when
  they reduce per-chunk results), and
* emitted as straight-line IR by the whole-model code generator,

so every engine makes identical choices.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple

from ..cogframe.prng import CounterRNG


def reservoir_argmin(
    costs: Iterable[float],
    rng: Optional[CounterRNG] = None,
    uniform: Optional[Callable[[], float]] = None,
) -> Tuple[int, float]:
    """Index and value of the minimum of ``costs`` with random tie-breaking.

    Exactly one uniform draw is consumed per tie encountered (none when the
    minimum is unique), matching the generated IR draw-for-draw.
    """
    if uniform is None:
        if rng is not None:
            uniform = rng.uniform
        else:
            uniform = lambda: 0.0  # noqa: E731 - deterministic first-wins fallback

    best_index = -1
    best_cost = float("inf")
    ties = 0
    saw_nan = False
    count = 0
    for index, cost in enumerate(costs):
        cost = float(cost)
        count += 1
        if cost != cost:  # NaN: the float ==/< tie tests would silently skip it
            saw_nan = True
            continue
        if cost < best_cost:
            best_cost = cost
            best_index = index
            ties = 1
        elif cost == best_cost:
            ties += 1
            if uniform() < 1.0 / ties:
                best_index = index
    if best_index < 0:
        if saw_nan:
            raise ValueError(
                f"reservoir_argmin: all {count} costs are NaN — the objective "
                f"produced no comparable value"
            )
        raise ValueError("reservoir_argmin requires at least one cost")
    return best_index, best_cost


def merge_chunk_minima(
    chunks: Sequence[Tuple[int, float, int]],
) -> Tuple[int, float, int]:
    """Merge per-chunk ``(index, cost, ties)`` results from a partitioned search.

    Keeps the lowest cost and the earliest index, and accumulates tie counts.
    Chunks that found nothing comparable — empty or all-NaN segments, which
    report ``best_index = -1`` — are skipped instead of letting the ``-1``
    escape into the merged result (the float ``==`` tie test would otherwise
    happily merge a ``(-1, inf)`` sentinel with a real ``inf`` minimum); a
    NaN best cost is likewise rejected.  When no chunk carries a comparable
    cost the merge raises a clear error.

    .. note:: since the serial-equivalence fix, the multicore driver ships
       per-chunk *candidate events* (see
       :mod:`repro.backends.grid_driver`) rather than reservoir triples —
       a chunk's ``(index, cost, ties)`` summary cannot replay the serial
       scan's tie-break draws exactly.  This merge remains for coarse
       reductions where draw-exactness is not required.
    """
    best_index, best_cost, total_ties = -1, float("inf"), 0
    saw_chunk = False
    for index, cost, ties in chunks:
        saw_chunk = True
        if index < 0 or cost != cost:  # empty / all-NaN chunk sentinel
            continue
        if cost < best_cost:
            best_index, best_cost, total_ties = index, cost, ties
        elif cost == best_cost:
            total_ties += ties
            if best_index < 0 or index < best_index:
                best_index = index
    if best_index < 0:
        if saw_chunk:
            raise ValueError(
                "merge_chunk_minima: no chunk carries a comparable cost "
                "(all segments were empty or produced only NaN costs)"
            )
        raise ValueError("merge_chunk_minima requires at least one chunk")
    return best_index, best_cost, total_ties
