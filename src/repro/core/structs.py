"""Static data-structure conversion (paper section 3.3).

Cognitive models keep their signals, parameters and bookkeeping in Python
dicts and lists keyed by strings.  Their shapes and keys are invariant during
execution, so Distill converts them into statically defined structures and
replaces string keys with fixed offsets (enums).  This module computes those
layouts from the sanitization info:

* the **parameter structure** (read-only): every mechanism parameter, the
  control mechanisms' candidate-level tables and the projection-independent
  constants;
* the **state structure** (read-write): integrator state, PRNG states,
  per-node execution counters and control bookkeeping;
* the **node-output structure**: one field per mechanism output; two
  instances of it (previous / current) implement the double buffering the
  scheduler semantics require;
* flattened layouts for external inputs, per-trial result records and the
  per-pass monitor buffer.

The same layout object is used by the code generator (to emit GEPs with
constant offsets) and by the drivers (to fill the buffers with concrete
values before execution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..cogframe.composition import Composition
from ..cogframe.mechanisms import GridSearchControlMechanism
from ..cogframe.prng import CounterRNG
from ..cogframe.sanitize import SanitizationInfo
from ..ir.types import F64, ArrayType, StructType


def _field(mech: str, name: str) -> str:
    """Canonical field name (the 'enum key') for a mechanism's entry."""
    return f"{mech}__{name}"


@dataclass
class StaticLayout:
    """All static structures derived for one model."""

    params_struct: StructType
    state_struct: StructType
    output_struct: StructType
    #: Values to pour into a freshly allocated parameter buffer.
    param_values: List[float]
    #: Values to pour into a freshly allocated state buffer (seed-independent
    #: part; PRNG keys are filled by :meth:`initial_state_values`).
    state_init_values: List[float]
    #: Slot ranges of state fields that must be reset at the start of every
    #: trial (everything except PRNG states): list of (offset, values).
    state_reset_entries: List[Tuple[int, List[float]]]
    #: Slot offsets of the PRNG state (key, counter) per mechanism.
    rng_offsets: Dict[str, int]
    #: (offset, size) of each mechanism's output in the output struct.
    output_offsets: Dict[str, Tuple[int, int]]
    #: External input layout: mechanism -> (offset, size); total size.
    input_layout: Dict[str, Tuple[int, int]]
    input_size: int
    #: Result record layout: mechanism -> (offset, size); plus pass count slot.
    result_layout: Dict[str, Tuple[int, int]]
    result_size: int
    #: Monitor record layout per pass: mechanism -> (offset, size).
    monitor_layout: Dict[str, Tuple[int, int]]
    monitor_size: int
    max_passes: int
    execution_order: List[str]

    # -- field name helpers ------------------------------------------------------
    @staticmethod
    def param_field(mech: str, name: str) -> str:
        return _field(mech, name)

    @staticmethod
    def state_field(mech: str, name: str) -> str:
        return _field(mech, name)

    @staticmethod
    def rng_field(mech: str) -> str:
        return _field(mech, "rng")

    @staticmethod
    def count_field(mech: str) -> str:
        return _field(mech, "calls")

    @staticmethod
    def output_field(mech: str) -> str:
        return _field(mech, "out")

    # -- buffer construction -------------------------------------------------------
    def allocate_params(self) -> List[float]:
        return list(self.param_values)

    def allocate_state(self, seed: int = 0) -> List[float]:
        """A fresh state buffer with PRNG keys derived from ``seed``."""
        state = list(self.state_init_values)
        for index, name in enumerate(self.execution_order):
            offset = self.rng_offsets.get(name)
            if offset is None:
                continue
            state[offset] = float(CounterRNG.derive_key(seed, stream=index))
            state[offset + 1] = 0.0
        return state

    def allocate_outputs(self) -> List[float]:
        return [0.0] * max(self.output_struct.slot_count(), 1)

    def result_record_size(self) -> int:
        return self.result_size + 1  # +1 for the pass count

    def monitor_record_size(self) -> int:
        return self.monitor_size * self.max_passes


def build_layout(composition: Composition, info: SanitizationInfo) -> StaticLayout:
    """Compute the static layout for ``composition`` from its sanitization info."""
    params_struct = StructType(f"{composition.name}_params")
    state_struct = StructType(f"{composition.name}_state")
    output_struct = StructType(f"{composition.name}_outputs")

    param_values: List[float] = []
    state_init_values: List[float] = []
    state_reset_entries: List[Tuple[int, List[float]]] = []
    rng_offsets: Dict[str, int] = {}
    output_offsets: Dict[str, Tuple[int, int]] = {}

    def add_param_field(name: str, values: np.ndarray) -> None:
        flat = np.asarray(values, dtype=float).ravel()
        if flat.size == 1:
            params_struct.add_field(name, F64)
        else:
            params_struct.add_field(name, ArrayType(F64, flat.size))
        param_values.extend(float(v) for v in flat)

    def add_state_field(name: str, values: np.ndarray, reset: bool = True) -> int:
        flat = np.asarray(values, dtype=float).ravel()
        offset = state_struct.slot_count()
        if flat.size == 1:
            state_struct.add_field(name, F64)
        else:
            state_struct.add_field(name, ArrayType(F64, flat.size))
        state_init_values.extend(float(v) for v in flat)
        if reset:
            state_reset_entries.append((offset, [float(v) for v in flat]))
        return offset

    for name in info.execution_order:
        mech_info = info.mechanisms[name]
        mech = composition.mechanisms[name]

        # Read-only parameters (strings/None were filtered by sanitize()).
        for param_name, values in sorted(mech_info.params.items()):
            add_param_field(_field(name, param_name), values)

        # Control mechanisms additionally carry their candidate-level tables.
        if isinstance(mech, GridSearchControlMechanism):
            for signal_index, levels in enumerate(mech.levels):
                add_param_field(_field(name, f"levels{signal_index}"), np.asarray(levels))
            # Parameters of the simulation-pipeline mechanisms are already in
            # the struct because pipeline mechanisms are composition nodes.

        # Read-write state.
        for state_name, values in sorted(mech_info.state.items()):
            add_state_field(_field(name, state_name), values, reset=True)
        # Per-node execution counter (used by EveryNCalls and for metadata).
        add_state_field(_field(name, "calls"), np.array([0.0]), reset=True)
        # PRNG state: (key, counter); the key is seed-dependent, never reset.
        if mech_info.needs_rng or mech_info.is_control:
            rng_offsets[name] = add_state_field(
                _field(name, "rng"), np.array([0.0, 0.0]), reset=False
            )

        # Output buffer entry.
        offset = output_struct.slot_count()
        size = mech_info.output_size
        if size == 1:
            output_struct.add_field(_field(name, "out"), F64)
        else:
            output_struct.add_field(_field(name, "out"), ArrayType(F64, size))
        output_offsets[name] = (offset, size)

    # Result record: final outputs of the designated output nodes.
    result_layout: Dict[str, Tuple[int, int]] = {}
    result_size = 0
    for name in composition.output_nodes:
        size = info.mechanisms[name].output_size
        result_layout[name] = (result_size, size)
        result_size += size

    monitor_layout: Dict[str, Tuple[int, int]] = {}
    monitor_size = 0
    for name in composition.monitored_nodes:
        size = info.mechanisms[name].output_size
        monitor_layout[name] = (monitor_size, size)
        monitor_size += size

    return StaticLayout(
        params_struct=params_struct,
        state_struct=state_struct,
        output_struct=output_struct,
        param_values=param_values,
        state_init_values=state_init_values,
        state_reset_entries=state_reset_entries,
        rng_offsets=rng_offsets,
        output_offsets=output_offsets,
        input_layout=dict(info.input_layout),
        input_size=info.input_size,
        result_layout=result_layout,
        result_size=result_size,
        monitor_layout=monitor_layout,
        monitor_size=monitor_size,
        max_passes=info.max_passes,
        execution_order=list(info.execution_order),
    )
