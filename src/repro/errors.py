"""Common exception types used across the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ModelStructureError(ReproError):
    """A cognitive model is malformed (bad wiring, shape mismatch, ...)."""


class SanitizationError(ModelStructureError):
    """The sanitization run detected an inconsistency in the model."""


class CompilationError(ReproError):
    """Distill could not compile the model (e.g. unsupported construct)."""


class PipelineParseError(CompilationError):
    """A textual pipeline description could not be parsed.

    Raised by :func:`repro.parse_pipeline` with a message naming the offending
    entry and, where possible, the set of known passes/aliases.
    """


class UnsupportedConstructError(CompilationError):
    """A model uses a construct outside the compilable subset."""


class EngineError(ReproError):
    """An execution engine failed or was misconfigured."""


class ServeError(ReproError):
    """The serving daemon rejected or failed a request.

    Structured wire errors (:mod:`repro.serve.protocol`) map onto this
    family on the client side; ``code`` carries the wire error code.
    """

    code = "serve_error"

    def __init__(self, message: str, code: str = None):
        super().__init__(message)
        if code is not None:
            self.code = code


class ServerBusy(ServeError):
    """The daemon's bounded admission queue is full (backpressure)."""

    code = "server_busy"


class DeadlineExceeded(ServeError):
    """The request's deadline expired before it was dispatched."""

    code = "deadline_exceeded"


class ServerUnavailable(ServeError):
    """The daemon is draining for shutdown or the connection is gone."""

    code = "shutting_down"


class StaleAnalysisError(CompilationError):
    """A pass declared an analysis preserved that its mutations invalidated.

    Raised by :class:`repro.analysis.manager.AnalysisManager` in ``audit``
    mode when a pass reports a change, claims an analysis is preserved, and a
    recomputation of that analysis disagrees with the cached result.
    """
