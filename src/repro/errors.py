"""Common exception types used across the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ModelStructureError(ReproError):
    """A cognitive model is malformed (bad wiring, shape mismatch, ...)."""


class SanitizationError(ModelStructureError):
    """The sanitization run detected an inconsistency in the model."""


class CompilationError(ReproError):
    """Distill could not compile the model (e.g. unsupported construct)."""


class PipelineParseError(CompilationError):
    """A textual pipeline description could not be parsed.

    Raised by :func:`repro.parse_pipeline` with a message naming the offending
    entry and, where possible, the set of known passes/aliases.
    """


class UnsupportedConstructError(CompilationError):
    """A model uses a construct outside the compilable subset."""


class EngineError(ReproError):
    """An execution engine failed or was misconfigured."""


class StaleAnalysisError(CompilationError):
    """A pass declared an analysis preserved that its mutations invalidated.

    Raised by :class:`repro.analysis.manager.AnalysisManager` in ``audit``
    mode when a pass reports a change, claims an analysis is preserved, and a
    recomputation of that analysis disagrees with the cached result.
    """
