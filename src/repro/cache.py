"""Artifact-store maintenance CLI: ``python -m repro.cache``.

Subcommands::

    python -m repro.cache stats                     # object count / bytes + tuned pipelines
    python -m repro.cache gc --max-mb 512           # evict oldest past cap
    python -m repro.cache gc --max-bytes 0          # drop everything

The store root comes from ``--dir`` or the ``REPRO_ARTIFACT_DIR`` environment
variable (the same variable :class:`repro.Session` consults to enable the
store implicitly).
"""

from __future__ import annotations

import argparse
import os
import sys

from .driver.artifacts import STORE_ENV_VAR, ArtifactStore


def _store_from_args(args) -> ArtifactStore:
    root = args.dir or os.environ.get(STORE_ENV_VAR)
    if not root:
        raise SystemExit(
            f"no artifact store configured: pass --dir or set {STORE_ENV_VAR}"
        )
    return ArtifactStore(root)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cache",
        description="Inspect and garbage-collect the on-disk artifact store.",
    )
    parser.add_argument(
        "--dir",
        default=None,
        help=f"store root (default: ${STORE_ENV_VAR})",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("stats", help="print object count and total size")

    gc = sub.add_parser("gc", help="evict oldest objects past a size cap")
    cap = gc.add_mutually_exclusive_group(required=True)
    cap.add_argument("--max-bytes", type=int, help="size cap in bytes")
    cap.add_argument("--max-mb", type=float, help="size cap in megabytes")

    args = parser.parse_args(argv)
    store = _store_from_args(args)

    if args.command == "stats":
        stats = store.stats()
        print(f"store:  {store.root}")
        print(f"files:  {stats['files']}")
        print(f"bytes:  {stats['bytes']} ({stats['bytes'] / 1e6:.1f} MB)")
        tuned = store.tuned_stats()
        print("tuned pipelines:")
        print(f"  entries:  {tuned['entries']}")
        print(f"  bytes:    {tuned['bytes']}")
        # Hit/miss/write counters are per-process; a fresh CLI process has
        # performed no lookups, so these matter mostly for embedded callers.
        print(
            f"  counters: hits={tuned['hits']} misses={tuned['misses']} "
            f"writes={tuned['writes']} (this process)"
        )
        return 0

    max_bytes = args.max_bytes if args.max_bytes is not None else int(args.max_mb * 1e6)
    if max_bytes < 0:
        raise SystemExit("size cap must be non-negative")
    summary = store.gc(max_bytes)
    print(
        f"removed {summary['removed_files']} objects "
        f"({summary['removed_bytes']} bytes); "
        f"kept {summary['kept_files']} objects ({summary['kept_bytes']} bytes)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
