"""The sanitization run: the shape/type oracle Distill mines (paper §3.1).

Before a model is run for real, the framework executes every node once with
default (zero) inputs, propagating signals along projections, to check that
the model is wired consistently.  By construction the shapes seen in this run
are the shapes of the real run — which is exactly why Distill can convert all
dynamic structures into static ones without dynamic hot-path analysis.

:func:`sanitize` performs that run and returns a :class:`SanitizationInfo`
describing, for every mechanism, the concatenated input size, per-port sizes
and offsets, the output size, the read-only parameters (values and shapes)
and the read-write state entries (initial values), plus model-level layouts
(flattened external-input and output-record sizes).  The info object is the
single source of truth for the compiler's static data-structure conversion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..errors import SanitizationError
from .composition import Composition
from .mechanisms import GridSearchControlMechanism, Mechanism
from .prng import CounterRNG


@dataclass
class MechanismInfo:
    """Shapes and values discovered for one mechanism."""

    name: str
    input_size: int
    output_size: int
    port_sizes: Dict[str, int]
    port_offsets: Dict[str, int]
    params: Dict[str, np.ndarray]
    state: Dict[str, np.ndarray]
    needs_rng: bool
    is_control: bool


@dataclass
class SanitizationInfo:
    """Everything the compiler needs to lay out static structures."""

    model_name: str
    mechanisms: Dict[str, MechanismInfo]
    execution_order: List[str]
    #: Flattened external-input layout: node name -> (offset, size).
    input_layout: Dict[str, Tuple[int, int]]
    input_size: int
    #: Flattened output-record layout: node name -> (offset, size).
    output_layout: Dict[str, Tuple[int, int]]
    output_size: int
    #: Flattened monitored-record layout (recorded every pass).
    monitor_layout: Dict[str, Tuple[int, int]]
    monitor_size: int
    max_passes: int

    def info(self, name: str) -> MechanismInfo:
        return self.mechanisms[name]


def sanitize(composition: Composition, seed: int = 0) -> SanitizationInfo:
    """Run the sanitization pass over ``composition`` and collect shape info."""
    composition.validate()

    mech_infos: Dict[str, MechanismInfo] = {}
    outputs: Dict[str, np.ndarray] = {}
    order = composition.execution_order()

    # Default outputs so that projections can be propagated in one sweep even
    # through feedback edges (everything starts at zero).
    for name, mech in composition.mechanisms.items():
        outputs[name] = np.zeros(mech.output_size)

    for name in order:
        mech = composition.mechanisms[name]
        variable = _default_variable(composition, mech, outputs)
        if variable.size != mech.input_size:
            raise SanitizationError(
                f"node {name!r}: projections deliver {variable.size} values but the "
                f"node declares {mech.input_size} input elements"
            )
        rng = CounterRNG(seed, stream=order.index(name)) if mech.needs_rng else None
        state = mech.state_spec()
        observed = _sanitization_execute(mech, variable, state, rng)
        if observed.size != mech.output_size:
            raise SanitizationError(
                f"node {name!r}: produced {observed.size} output values but declares "
                f"{mech.output_size}"
            )
        outputs[name] = np.zeros(mech.output_size)

        params = {
            key: np.atleast_1d(np.asarray(value, dtype=float))
            for key, value in mech.param_values().items()
            if value is not None and not isinstance(value, str)
        }
        mech_infos[name] = MechanismInfo(
            name=name,
            input_size=mech.input_size,
            output_size=mech.output_size,
            port_sizes={p.name: p.size for p in mech.input_ports},
            port_offsets={p.name: mech.port_offset(p.name) for p in mech.input_ports},
            params=params,
            state=mech.state_spec(),
            needs_rng=mech.needs_rng,
            is_control=isinstance(mech, GridSearchControlMechanism),
        )

    input_layout, input_size = _layout(composition.input_nodes, composition)
    output_layout, output_size = _layout(composition.output_nodes, composition)
    monitor_layout, monitor_size = _layout(composition.monitored_nodes, composition)

    return SanitizationInfo(
        model_name=composition.name,
        mechanisms=mech_infos,
        execution_order=order,
        input_layout=input_layout,
        input_size=input_size,
        output_layout=output_layout,
        output_size=output_size,
        monitor_layout=monitor_layout,
        monitor_size=monitor_size,
        max_passes=composition.max_passes,
    )


def _layout(names: List[str], composition: Composition) -> Tuple[Dict[str, Tuple[int, int]], int]:
    layout: Dict[str, Tuple[int, int]] = {}
    offset = 0
    for name in names:
        size = composition.mechanisms[name].output_size
        layout[name] = (offset, size)
        offset += size
    return layout, offset


def _default_variable(
    composition: Composition, mech: Mechanism, outputs: Dict[str, np.ndarray]
) -> np.ndarray:
    """Build the node's variable from zero-valued projections (or zeros)."""
    incoming = composition.incoming_projections(mech)
    port_values = {p.name: np.zeros(p.size) for p in mech.input_ports}
    delivered = {p.name: False for p in mech.input_ports}
    for projection in incoming:
        contribution = projection.apply(outputs[projection.sender.name])
        if projection.port not in port_values:
            raise SanitizationError(
                f"projection {projection.describe()}: receiver has no port "
                f"{projection.port!r}"
            )
        if contribution.size != port_values[projection.port].size:
            raise SanitizationError(
                f"projection {projection.describe()}: delivers {contribution.size} "
                f"values to a port of size {port_values[projection.port].size}"
            )
        port_values[projection.port] = port_values[projection.port] + contribution
        delivered[projection.port] = True
    is_input_node = mech.name in composition.input_nodes
    for port in mech.input_ports:
        if not delivered[port.name] and not is_input_node and not incoming:
            # A node with no incoming projections that is not an input node is
            # allowed (e.g. bias generators), it simply sees zeros.
            pass
    return np.concatenate([port_values[p.name] for p in mech.input_ports])


def _sanitization_execute(
    mech: Mechanism, variable: np.ndarray, state: Dict[str, np.ndarray], rng
) -> np.ndarray:
    """Execute a node once for shape checking.

    Grid-search control mechanisms are special-cased: evaluating the full
    allocation grid during sanitization would defeat its purpose, so only a
    single candidate is evaluated to validate the pipeline's shapes, and the
    output shape (the allocation vector) is constructed directly.
    """
    if isinstance(mech, GridSearchControlMechanism):
        probe_rng = CounterRNG(0, stream=97)
        first_point = mech.grid_points()[0]
        cost = mech.evaluate_allocation(np.asarray(variable, dtype=float), first_point, probe_rng)
        if not np.isfinite(cost) and not np.isnan(cost):
            raise SanitizationError(
                f"control {mech.name!r}: evaluation pipeline produced a non-numeric cost"
            )
        return np.zeros(mech.output_size)
    return mech.execute(variable, state, rng)
