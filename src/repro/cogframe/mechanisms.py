"""Mechanisms: the nodes of a cognitive model.

A mechanism owns a function from the library, one or more named input ports
(whose incoming projections are summed and concatenated in declaration order
to form the function's variable) and a single output port.  Mechanisms keep
their read-only parameters inside the function instance and declare their
read-write state through the function's ``state_spec``; the Distill compiler
mines both via the sanitization run and lays them out in static structures
(paper section 3.3).

The :class:`GridSearchControlMechanism` is the domain-specific construct at
the heart of the predator-prey model: it owns a feed-forward *simulation
pipeline* which it evaluates for every point of its allocation grid, selects
the allocation with the lowest cost (breaking ties by reservoir sampling) and
outputs it.  Both the interpretive runner and the compiled code evaluate the
pipeline with per-evaluation PRNG states derived from the evaluation index,
which makes serial, multicore and (simulated) GPU execution bit-identical —
the reproducibility property the paper insists on (section 3.6).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ModelStructureError
from .functions.base import BaseFunction
from .prng import CounterRNG


@dataclass
class InputPort:
    """A named input port with a statically known size."""

    name: str
    size: int


class Mechanism:
    """A model node: input ports + a library function + one output port."""

    #: Class-level marker used by the compiler to special-case control nodes.
    is_control = False

    def __init__(
        self,
        name: str,
        function: BaseFunction,
        input_ports: Optional[Sequence[InputPort]] = None,
        size: Optional[int] = None,
    ):
        if input_ports is None:
            if size is None:
                raise ModelStructureError(
                    f"mechanism {name!r}: provide input_ports or a size"
                )
            input_ports = [InputPort("input", int(size))]
        self.name = name
        self.function = function
        self.input_ports: List[InputPort] = list(input_ports)
        if not self.input_ports:
            raise ModelStructureError(f"mechanism {name!r} needs at least one input port")
        seen = set()
        for port in self.input_ports:
            if port.name in seen:
                raise ModelStructureError(
                    f"mechanism {name!r}: duplicate input port {port.name!r}"
                )
            seen.add(port.name)

    # -- shape queries ---------------------------------------------------------------
    @property
    def input_size(self) -> int:
        return sum(port.size for port in self.input_ports)

    @property
    def output_size(self) -> int:
        return int(self.function.output_size(self.input_size))

    def port_size(self, name: str) -> int:
        for port in self.input_ports:
            if port.name == name:
                return port.size
        raise ModelStructureError(f"mechanism {self.name!r} has no input port {name!r}")

    def port_offset(self, name: str) -> int:
        """Offset of a port's values inside the concatenated variable."""
        offset = 0
        for port in self.input_ports:
            if port.name == name:
                return offset
            offset += port.size
        raise ModelStructureError(f"mechanism {self.name!r} has no input port {name!r}")

    # -- parameter / state declarations ------------------------------------------------
    def param_values(self) -> Dict[str, object]:
        """Read-only parameters (name -> float or array)."""
        return dict(self.function.params)

    def state_spec(self) -> Dict[str, np.ndarray]:
        """Read-write state entries and their initial values."""
        return {
            key: np.asarray(value, dtype=float).copy()
            for key, value in self.function.state_spec(self.input_size).items()
        }

    @property
    def needs_rng(self) -> bool:
        return self.function.needs_rng

    def rng_draws_per_execution(self) -> int:
        """Number of normal/uniform draws one execution consumes (0 if none)."""
        if not self.needs_rng:
            return 0
        # Stochastic library functions draw once per output element.
        return max(self.output_size, 1)

    # -- reference execution ----------------------------------------------------------------
    def execute(
        self,
        variable: np.ndarray,
        state: Dict[str, np.ndarray],
        rng: Optional[CounterRNG],
    ) -> np.ndarray:
        """Execute the mechanism's function on a concatenated input variable."""
        variable = np.asarray(variable, dtype=float).ravel()
        if variable.size != self.input_size:
            raise ModelStructureError(
                f"mechanism {self.name!r}: expected {self.input_size} input "
                f"elements, got {variable.size}"
            )
        result = self.function.compute(variable, self.function.params, state, rng)
        return np.atleast_1d(np.asarray(result, dtype=float)).ravel()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        ports = ", ".join(f"{p.name}[{p.size}]" for p in self.input_ports)
        return f"<{type(self).__name__} {self.name} ({ports}) -> [{self.output_size}]>"


class ProcessingMechanism(Mechanism):
    """A plain feed-forward mechanism (transfer or combination function)."""


class TransferMechanism(ProcessingMechanism):
    """Alias kept for familiarity with PsyNeuLink naming."""


class IntegratorMechanism(Mechanism):
    """A stateful mechanism whose function accumulates evidence over passes."""


class ObjectiveMechanism(Mechanism):
    """A mechanism computing a scalar objective/utility from its inputs."""


# ---------------------------------------------------------------------------
# Grid-search control
# ---------------------------------------------------------------------------


@dataclass
class SimulationStep:
    """One stage of a control mechanism's evaluation pipeline.

    ``sources`` lists, for each input port of ``mechanism`` (in declaration
    order), where that port's values come from during a simulated evaluation:

    * ``("input", start, length)`` — a slice of the control mechanism's own
      (true, un-distorted) input;
    * ``("allocation", index)`` — one candidate allocation level;
    * ``("allocation", -1)`` — the full candidate allocation vector;
    * ``("step", name)`` — the output of an earlier pipeline step.
    """

    mechanism: Mechanism
    sources: List[Tuple]


class GridSearchControlMechanism(Mechanism):
    """Exhaustive grid search over control-signal allocations (paper §3.6).

    Parameters
    ----------
    name:
        Mechanism name.
    input_size:
        Size of the true (undistorted) input the controller observes.
    levels:
        One list of candidate levels per control signal; the grid is their
        Cartesian product.
    steps:
        The evaluation pipeline (see :class:`SimulationStep`), ending with a
        step whose output is the scalar cost.
    objective_step:
        Name of the pipeline mechanism whose (scalar) output is the cost to
        minimise.
    """

    is_control = True

    def __init__(
        self,
        name: str,
        input_size: int,
        levels: Sequence[Sequence[float]],
        steps: Sequence[SimulationStep],
        objective_step: str,
    ):
        function = _ControlFunctionPlaceholder(num_signals=len(levels))
        super().__init__(name, function, [InputPort("input", int(input_size))])
        self.levels: List[List[float]] = [list(map(float, lv)) for lv in levels]
        if not self.levels or any(not lv for lv in self.levels):
            raise ModelStructureError(f"control {name!r}: every signal needs at least one level")
        self.steps: List[SimulationStep] = list(steps)
        self.objective_step = objective_step
        step_names = [s.mechanism.name for s in self.steps]
        if objective_step not in step_names:
            raise ModelStructureError(
                f"control {name!r}: objective step {objective_step!r} is not in the pipeline"
            )
        self._validate_pipeline()

    # -- shape queries ------------------------------------------------------------------
    @property
    def output_size(self) -> int:
        return len(self.levels)

    @property
    def grid_size(self) -> int:
        size = 1
        for lv in self.levels:
            size *= len(lv)
        return size

    def grid_points(self) -> List[Tuple[float, ...]]:
        return list(itertools.product(*self.levels))

    def rng_draws_per_evaluation(self) -> int:
        """Normal/uniform draws consumed by one evaluation of the pipeline."""
        draws = 0
        for step in self.steps:
            if step.mechanism.needs_rng:
                draws += step.mechanism.rng_draws_per_execution()
        return draws

    def counter_stride_per_evaluation(self) -> int:
        """PRNG counter ticks reserved per evaluation (normals use 2 ticks)."""
        return 2 * self.rng_draws_per_evaluation() + 2

    def rng_draws_per_execution(self) -> int:
        # Tie-breaking draws from the control's own stream (reservoir sampling).
        return 1

    def state_spec(self) -> Dict[str, np.ndarray]:
        # eval_epoch counts executions of the controller so that every pass /
        # trial uses fresh, but reproducible, evaluation RNG streams.
        # last_best_cost exposes the winning cost to observers and benchmarks.
        return {"eval_epoch": np.array([0.0]), "last_best_cost": np.array([0.0])}

    @property
    def needs_rng(self) -> bool:
        return True

    # -- validation -----------------------------------------------------------------------
    def _validate_pipeline(self) -> None:
        produced: Dict[str, int] = {}
        for step in self.steps:
            mech = step.mechanism
            if len(step.sources) != len(mech.input_ports):
                raise ModelStructureError(
                    f"control {self.name!r}: step {mech.name!r} has {len(mech.input_ports)} "
                    f"ports but {len(step.sources)} sources"
                )
            for port, source in zip(mech.input_ports, step.sources):
                kind = source[0]
                if kind == "input":
                    _, start, length = source
                    if start < 0 or start + length > self.input_size:
                        raise ModelStructureError(
                            f"control {self.name!r}: step {mech.name!r} reads input slice "
                            f"({start}, {length}) outside the control input of size {self.input_size}"
                        )
                    if length != port.size:
                        raise ModelStructureError(
                            f"control {self.name!r}: step {mech.name!r} port {port.name!r} "
                            f"expects {port.size} values, slice provides {length}"
                        )
                elif kind == "allocation":
                    index = source[1]
                    expected = len(self.levels) if index == -1 else 1
                    if index != -1 and not (0 <= index < len(self.levels)):
                        raise ModelStructureError(
                            f"control {self.name!r}: allocation index {index} out of range"
                        )
                    if port.size != expected:
                        raise ModelStructureError(
                            f"control {self.name!r}: step {mech.name!r} port {port.name!r} "
                            f"expects {port.size} values, allocation source provides {expected}"
                        )
                elif kind == "step":
                    ref = source[1]
                    if ref not in produced:
                        raise ModelStructureError(
                            f"control {self.name!r}: step {mech.name!r} consumes "
                            f"{ref!r} before it is produced"
                        )
                    if produced[ref] != port.size:
                        raise ModelStructureError(
                            f"control {self.name!r}: step {mech.name!r} port {port.name!r} "
                            f"expects {port.size} values, step {ref!r} produces {produced[ref]}"
                        )
                else:
                    raise ModelStructureError(
                        f"control {self.name!r}: unknown source kind {kind!r}"
                    )
            produced[mech.name] = mech.output_size
        if produced[self.objective_step] != 1:
            raise ModelStructureError(
                f"control {self.name!r}: objective step must produce a scalar cost"
            )

    # -- reference execution -----------------------------------------------------------------
    def evaluate_allocation(
        self,
        true_input: np.ndarray,
        allocation: Sequence[float],
        rng: CounterRNG,
    ) -> float:
        """Run the simulation pipeline once for one candidate allocation."""
        outputs: Dict[str, np.ndarray] = {}
        allocation = np.asarray(allocation, dtype=float)
        for step in self.steps:
            mech = step.mechanism
            pieces = []
            for source in step.sources:
                kind = source[0]
                if kind == "input":
                    _, start, length = source
                    pieces.append(true_input[start : start + length])
                elif kind == "allocation":
                    index = source[1]
                    if index == -1:
                        pieces.append(allocation)
                    else:
                        pieces.append(allocation[index : index + 1])
                else:
                    pieces.append(outputs[source[1]])
            variable = np.concatenate([np.atleast_1d(p) for p in pieces])
            # Simulation state is evaluation-local: integrators restart from
            # their initial values for every candidate (read-write parameter
            # copies, exactly as the paper describes for parallel threads).
            local_state = mech.state_spec()
            outputs[mech.name] = mech.execute(variable, local_state, rng)
        return float(outputs[self.objective_step][0])

    def execute(
        self,
        variable: np.ndarray,
        state: Dict[str, np.ndarray],
        rng: Optional[CounterRNG],
    ) -> np.ndarray:
        """Search the allocation grid and return the best allocation vector."""
        if rng is None:
            raise ModelStructureError(f"control {self.name!r} requires an RNG")
        true_input = np.asarray(variable, dtype=float).ravel()
        # The scheduler (reference runner or compiled trial driver) writes the
        # evaluation epoch — trial_index * max_passes + pass_index — into the
        # state before executing the controller, so every execution uses a
        # fresh but reproducible block of PRNG counters.
        epoch = int(state["eval_epoch"][0])
        stride = self.counter_stride_per_evaluation()
        grid = self.grid_points()
        base = epoch * len(grid) * stride

        best_cost = math.inf
        best_allocation = grid[0]
        ties = 0
        for index, allocation in enumerate(grid):
            eval_rng = CounterRNG.__new__(CounterRNG)
            eval_rng.key = rng.key
            eval_rng.counter = base + index * stride
            cost = self.evaluate_allocation(true_input, allocation, eval_rng)
            if cost < best_cost:
                best_cost = cost
                best_allocation = allocation
                ties = 1
            elif cost == best_cost:
                # Reservoir sampling over equal-cost allocations (paper §3.3).
                ties += 1
                if rng.uniform() < 1.0 / ties:
                    best_allocation = allocation
        state["last_best_cost"] = np.array([best_cost])
        return np.asarray(best_allocation, dtype=float)


class _ControlFunctionPlaceholder(BaseFunction):
    """Internal function object giving a control mechanism its output shape."""

    name = "grid_search_control"

    def __init__(self, num_signals: int):
        super().__init__()
        self.num_signals = num_signals

    def output_size(self, input_size: int) -> int:
        return self.num_signals

    def compute(self, variable, params, state, rng):  # pragma: no cover - never called
        raise RuntimeError("control mechanisms execute through GridSearchControlMechanism.execute")
