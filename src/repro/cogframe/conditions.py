"""Scheduler conditions: when nodes run and when trials terminate.

Conditions are small declarative objects.  The interpretive runner evaluates
them through :meth:`Condition.is_satisfied` against a :class:`SchedulerState`;
the Distill compiler lowers the same objects into IR (comparisons on the pass
counter and the per-node execution counters kept in the static state
structure), which is what lets whole-model optimisation see across the
scheduling logic (paper sections 2.2 and 3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np


@dataclass
class SchedulerState:
    """The information conditions may consult."""

    pass_index: int = 0
    trial_index: int = 0
    #: Executions of each node within the current trial.
    call_counts: Dict[str, int] = field(default_factory=dict)
    #: Current (previous-pass) output values of each node.
    outputs: Dict[str, np.ndarray] = field(default_factory=dict)


class Condition:
    """Base class of all activation and termination conditions."""

    def is_satisfied(self, state: SchedulerState) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{self.describe()}>"


class Always(Condition):
    """The node runs on every pass."""

    def is_satisfied(self, state: SchedulerState) -> bool:
        return True


class Never(Condition):
    """The node never runs (useful to disable parts of a model)."""

    def is_satisfied(self, state: SchedulerState) -> bool:
        return False


class AtPass(Condition):
    """The node runs only on pass ``n`` of each trial."""

    def __init__(self, n: int):
        self.n = int(n)

    def is_satisfied(self, state: SchedulerState) -> bool:
        return state.pass_index == self.n

    def describe(self) -> str:
        return f"AtPass({self.n})"


class AfterPass(Condition):
    """The node runs on every pass with index >= ``n``."""

    def __init__(self, n: int):
        self.n = int(n)

    def is_satisfied(self, state: SchedulerState) -> bool:
        return state.pass_index >= self.n

    def describe(self) -> str:
        return f"AfterPass({self.n})"


class EveryNPasses(Condition):
    """The node runs when ``pass_index % n == offset``."""

    def __init__(self, n: int, offset: int = 0):
        if n <= 0:
            raise ValueError("EveryNPasses requires n >= 1")
        self.n = int(n)
        self.offset = int(offset) % int(n)

    def is_satisfied(self, state: SchedulerState) -> bool:
        return state.pass_index % self.n == self.offset

    def describe(self) -> str:
        return f"EveryNPasses({self.n}, offset={self.offset})"


class EveryNCalls(Condition):
    """The node runs after every ``n`` additional executions of ``dependency``."""

    def __init__(self, dependency: str, n: int):
        if n <= 0:
            raise ValueError("EveryNCalls requires n >= 1")
        self.dependency = dependency if isinstance(dependency, str) else dependency.name
        self.n = int(n)

    def is_satisfied(self, state: SchedulerState) -> bool:
        count = state.call_counts.get(self.dependency, 0)
        return count > 0 and count % self.n == 0

    def describe(self) -> str:
        return f"EveryNCalls({self.dependency!r}, {self.n})"


class All(Condition):
    """Conjunction of conditions."""

    def __init__(self, *conditions: Condition):
        self.conditions = list(conditions)

    def is_satisfied(self, state: SchedulerState) -> bool:
        return all(c.is_satisfied(state) for c in self.conditions)

    def describe(self) -> str:
        return "All(" + ", ".join(c.describe() for c in self.conditions) + ")"


class Any(Condition):
    """Disjunction of conditions."""

    def __init__(self, *conditions: Condition):
        self.conditions = list(conditions)

    def is_satisfied(self, state: SchedulerState) -> bool:
        return any(c.is_satisfied(state) for c in self.conditions)

    def describe(self) -> str:
        return "Any(" + ", ".join(c.describe() for c in self.conditions) + ")"


class Not(Condition):
    """Negation of a condition."""

    def __init__(self, condition: Condition):
        self.condition = condition

    def is_satisfied(self, state: SchedulerState) -> bool:
        return not self.condition.is_satisfied(state)

    def describe(self) -> str:
        return f"Not({self.condition.describe()})"


# ---------------------------------------------------------------------------
# Termination conditions (evaluated at the start of every pass after the first)
# ---------------------------------------------------------------------------


class AfterNPasses(Condition):
    """Terminate the trial once ``n`` passes have completed."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("AfterNPasses requires n >= 1")
        self.n = int(n)

    def is_satisfied(self, state: SchedulerState) -> bool:
        return state.pass_index >= self.n

    def describe(self) -> str:
        return f"AfterNPasses({self.n})"


class ThresholdCrossed(Condition):
    """Terminate when an output statistic of a node crosses a threshold.

    ``statistic`` is one of ``"max_abs"``, ``"max"`` or ``"min"``; the trial
    ends when ``statistic(outputs[node]) comparator threshold`` holds.  This
    is the DDM/LCA "decision reached" condition.
    """

    def __init__(self, node, threshold: float, comparator: str = ">=", statistic: str = "max_abs"):
        self.node = node if isinstance(node, str) else node.name
        self.threshold = float(threshold)
        if comparator not in (">=", ">", "<=", "<"):
            raise ValueError(f"unsupported comparator {comparator!r}")
        if statistic not in ("max_abs", "max", "min"):
            raise ValueError(f"unsupported statistic {statistic!r}")
        self.comparator = comparator
        self.statistic = statistic

    def _statistic(self, values: np.ndarray) -> float:
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return 0.0
        if self.statistic == "max_abs":
            return float(np.max(np.abs(values)))
        if self.statistic == "max":
            return float(np.max(values))
        return float(np.min(values))

    def is_satisfied(self, state: SchedulerState) -> bool:
        if self.node not in state.outputs:
            return False
        value = self._statistic(state.outputs[self.node])
        if self.comparator == ">=":
            return value >= self.threshold
        if self.comparator == ">":
            return value > self.threshold
        if self.comparator == "<=":
            return value <= self.threshold
        return value < self.threshold

    def describe(self) -> str:
        return (
            f"ThresholdCrossed({self.node!r}, {self.statistic} {self.comparator} "
            f"{self.threshold})"
        )


# ---------------------------------------------------------------------------
# Registry / introspection
# ---------------------------------------------------------------------------

#: Every condition type under its class name.  Like the function registry in
#: :mod:`repro.cogframe.functions`, this is the shared vocabulary of the
#: curated models, the compiler's condition lowering
#: (:func:`repro.core.codegen.emit_condition` supports exactly these types)
#: and the generative conformance fuzzer.
CONDITION_REGISTRY: Dict[str, type] = {
    cls.__name__: cls
    for cls in (
        Always,
        Never,
        AtPass,
        AfterPass,
        EveryNPasses,
        EveryNCalls,
        All,
        Any,
        Not,
        AfterNPasses,
        ThresholdCrossed,
    )
}

#: The subset usable as per-node activation conditions by generated models
#: (termination-only types excluded).
ACTIVATION_CONDITIONS = (
    "Always",
    "Never",
    "AtPass",
    "AfterPass",
    "EveryNPasses",
    "EveryNCalls",
    "All",
    "Any",
    "Not",
)


def list_conditions():
    """Names of every registered condition type, sorted."""
    return tuple(sorted(CONDITION_REGISTRY))


def get_condition(name: str) -> type:
    """The :class:`Condition` subclass registered under ``name``."""
    if name not in CONDITION_REGISTRY:
        raise KeyError(
            f"unknown condition {name!r}; known: {', '.join(list_conditions())}"
        )
    return CONDITION_REGISTRY[name]
