"""Stateful integrator functions: evidence accumulation over time.

Two of these are central to the paper:

* :class:`DriftDiffusionIntegrator` (DDM) — two-choice evidence accumulation
  with an analytical solution (:class:`DriftDiffusionAnalytical`), and
* :class:`LeakyCompetingIntegrator` (LCA, Usher & McClelland) — multi-choice
  accumulation with leak and lateral inhibition.

Figure 3 of the paper shows that the accumulation step at the core of both is
identical once the LCA's ``rate`` (leak) and ``offset`` are bound to zero and
the DDM's rate to one; the clone-detection tests reproduce that result on the
IR emitted by these templates.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from ..prng import CounterRNG
from .base import BaseFunction, EmitContext


class AccumulatorIntegrator(BaseFunction):
    """``new = previous + rate * x + noise * N(0,1)`` (simple accumulator)."""

    name = "accumulator"
    needs_rng = True

    def default_params(self) -> Dict[str, object]:
        return {"rate": 1.0, "noise": 0.0, "initializer": 0.0}

    def state_spec(self, input_size: int) -> Dict[str, np.ndarray]:
        init = self.param_array("initializer", input_size)
        return {"previous_value": init.copy()}

    def compute(self, variable, params, state, rng) -> np.ndarray:
        x = np.asarray(variable, dtype=float)
        prev = np.asarray(state["previous_value"], dtype=float)
        noise = params["noise"]
        draws = np.zeros_like(prev)
        if noise != 0.0 and rng is not None:
            draws = np.array([rng.normal() for _ in range(prev.size)])
        new = prev + params["rate"] * x + noise * draws
        state["previous_value"] = new
        return new

    def emit(self, ctx: EmitContext, inputs: List) -> List:
        b = ctx.builder
        rate = ctx.param_scalar("rate")
        noise = ctx.param_scalar("noise")
        prev = ctx.load_state("previous_value")
        outputs = []
        for p, x in zip(prev, inputs):
            value = b.fadd(p, b.fmul(rate, x))
            if self.params["noise"] != 0.0:
                draw = b.rng_normal(ctx.rng_ptr())
                value = b.fadd(value, b.fmul(noise, draw))
            outputs.append(value)
        ctx.store_state("previous_value", outputs)
        return outputs


class LeakyIntegrator(BaseFunction):
    """``new = previous + (rate * x - leak * previous) * dt + noise*sqrt(dt)*N(0,1)``."""

    name = "leaky_integrator"
    needs_rng = True

    def default_params(self) -> Dict[str, object]:
        return {"rate": 1.0, "leak": 0.1, "noise": 0.0, "time_step": 0.1, "initializer": 0.0}

    def state_spec(self, input_size: int) -> Dict[str, np.ndarray]:
        init = self.param_array("initializer", input_size)
        return {"previous_value": init.copy()}

    def compute(self, variable, params, state, rng) -> np.ndarray:
        x = np.asarray(variable, dtype=float)
        prev = np.asarray(state["previous_value"], dtype=float)
        dt = params["time_step"]
        noise = params["noise"]
        draws = np.zeros_like(prev)
        if noise != 0.0 and rng is not None:
            draws = np.array([rng.normal() for _ in range(prev.size)])
        new = prev + (params["rate"] * x - params["leak"] * prev) * dt
        new = new + noise * math.sqrt(dt) * draws
        state["previous_value"] = new
        return new

    def emit(self, ctx: EmitContext, inputs: List) -> List:
        b = ctx.builder
        rate = ctx.param_scalar("rate")
        leak = ctx.param_scalar("leak")
        noise = ctx.param_scalar("noise")
        dt = ctx.param_scalar("time_step")
        sqrt_dt = b.sqrt(dt)
        prev = ctx.load_state("previous_value")
        outputs = []
        for p, x in zip(prev, inputs):
            drive = b.fsub(b.fmul(rate, x), b.fmul(leak, p))
            value = b.fadd(p, b.fmul(drive, dt))
            if self.params["noise"] != 0.0:
                draw = b.rng_normal(ctx.rng_ptr())
                value = b.fadd(value, b.fmul(b.fmul(noise, sqrt_dt), draw))
            outputs.append(value)
        ctx.store_state("previous_value", outputs)
        return outputs


class LeakyCompetingIntegrator(BaseFunction):
    """Usher–McClelland leaky competing accumulator (LCA).

    ``new_i = prev_i + (x_i - leak*prev_i - competition*sum_{j!=i} prev_j)*dt
    + noise*sqrt(dt)*N(0,1)``, clipped at zero when ``non_negative`` is set.
    """

    name = "lca"
    needs_rng = True

    def default_params(self) -> Dict[str, object]:
        return {
            "leak": 0.1,
            "competition": 0.2,
            "noise": 0.0,
            "time_step": 0.1,
            "offset": 0.0,
            "initializer": 0.0,
            "non_negative": 1.0,
        }

    def state_spec(self, input_size: int) -> Dict[str, np.ndarray]:
        init = self.param_array("initializer", input_size)
        return {"previous_value": init.copy()}

    def compute(self, variable, params, state, rng) -> np.ndarray:
        x = np.asarray(variable, dtype=float)
        prev = np.asarray(state["previous_value"], dtype=float)
        dt = params["time_step"]
        noise = params["noise"]
        total = float(np.sum(prev))
        others = total - prev
        drive = x - params["leak"] * prev - params["competition"] * others
        draws = np.zeros_like(prev)
        if noise != 0.0 and rng is not None:
            draws = np.array([rng.normal() for _ in range(prev.size)])
        new = prev + drive * dt + noise * math.sqrt(dt) * draws + params["offset"]
        if params["non_negative"]:
            new = np.maximum(new, 0.0)
        state["previous_value"] = new
        return new

    def emit(self, ctx: EmitContext, inputs: List) -> List:
        b = ctx.builder
        leak = ctx.param_scalar("leak")
        competition = ctx.param_scalar("competition")
        noise = ctx.param_scalar("noise")
        dt = ctx.param_scalar("time_step")
        offset = ctx.param_scalar("offset")
        sqrt_dt = b.sqrt(dt)
        prev = ctx.load_state("previous_value")
        total = prev[0]
        for p in prev[1:]:
            total = b.fadd(total, p)
        outputs = []
        for p, x in zip(prev, inputs):
            others = b.fsub(total, p)
            drive = b.fsub(x, b.fmul(leak, p))
            drive = b.fsub(drive, b.fmul(competition, others))
            value = b.fadd(p, b.fmul(drive, dt))
            if self.params["noise"] != 0.0:
                draw = b.rng_normal(ctx.rng_ptr())
                value = b.fadd(value, b.fmul(b.fmul(noise, sqrt_dt), draw))
            value = b.fadd(value, offset)
            if self.params["non_negative"]:
                value = b.fmax(value, b.f64(0.0))
            outputs.append(value)
        ctx.store_state("previous_value", outputs)
        return outputs


class DriftDiffusionIntegrator(BaseFunction):
    """One step of drift-diffusion evidence accumulation (two-choice DDM).

    ``new = previous + rate * stimulus * dt + noise * sqrt(dt) * N(0,1)``.
    The decision is reached when ``|new| >= threshold``; the mechanism/driver
    checks the threshold, the integrator only performs the accumulation — the
    identical core that clone detection matches against the LCA (Figure 3).
    """

    name = "ddm_integrator"
    needs_rng = True

    def default_params(self) -> Dict[str, object]:
        return {
            "rate": 1.0,
            "noise": 1.0,
            "time_step": 0.01,
            "threshold": 1.0,
            "initializer": 0.0,
        }

    def output_size(self, input_size: int) -> int:
        return 1

    def state_spec(self, input_size: int) -> Dict[str, np.ndarray]:
        return {"previous_value": np.array([float(np.ravel(self.params["initializer"])[0])])}

    def compute(self, variable, params, state, rng) -> np.ndarray:
        stimulus = float(np.sum(np.asarray(variable, dtype=float)))
        prev = float(np.asarray(state["previous_value"]).ravel()[0])
        dt = params["time_step"]
        draw = rng.normal() if (rng is not None and params["noise"] != 0.0) else 0.0
        new = prev + params["rate"] * stimulus * dt + params["noise"] * math.sqrt(dt) * draw
        state["previous_value"] = np.array([new])
        return np.array([new])

    def emit(self, ctx: EmitContext, inputs: List) -> List:
        b = ctx.builder
        rate = ctx.param_scalar("rate")
        noise = ctx.param_scalar("noise")
        dt = ctx.param_scalar("time_step")
        sqrt_dt = b.sqrt(dt)
        prev = ctx.load_state("previous_value")[0]
        stimulus = inputs[0]
        for x in inputs[1:]:
            stimulus = b.fadd(stimulus, x)
        value = b.fadd(prev, b.fmul(b.fmul(rate, stimulus), dt))
        if self.params["noise"] != 0.0:
            draw = b.rng_normal(ctx.rng_ptr())
            value = b.fadd(value, b.fmul(b.fmul(noise, sqrt_dt), draw))
        ctx.store_state("previous_value", [value])
        return [value]


class DriftDiffusionAnalytical(BaseFunction):
    """Closed-form DDM solution (Bogacz et al. 2006).

    Outputs ``[expected_response_time, error_rate]`` for a given stimulus
    drift.  This is the "simpler module that has an analytical solution" the
    paper substitutes for an equivalent accumulator when clone detection
    proves the replacement sound.
    """

    name = "ddm_analytical"

    def default_params(self) -> Dict[str, object]:
        return {"drift_rate": 1.0, "threshold": 1.0, "noise": 1.0, "non_decision_time": 0.2}

    def output_size(self, input_size: int) -> int:
        return 2

    def compute(self, variable, params, state, rng) -> np.ndarray:
        stimulus = float(np.sum(np.asarray(variable, dtype=float)))
        drift = params["drift_rate"] * stimulus
        a = params["threshold"]
        noise = params["noise"]
        t0 = params["non_decision_time"]
        if abs(drift) < 1e-12:
            rt = t0 + a * a / (noise * noise)
            er = 0.5
        else:
            k = drift * a / (noise * noise)
            er = 1.0 / (1.0 + math.exp(2.0 * k))
            rt = t0 + (a / drift) * math.tanh(k)
        return np.array([rt, er])

    def emit(self, ctx: EmitContext, inputs: List) -> List:
        b = ctx.builder
        stimulus = inputs[0]
        for x in inputs[1:]:
            stimulus = b.fadd(stimulus, x)
        drift = b.fmul(ctx.param_scalar("drift_rate"), stimulus)
        a = ctx.param_scalar("threshold")
        noise = ctx.param_scalar("noise")
        t0 = ctx.param_scalar("non_decision_time")
        noise_sq = b.fmul(noise, noise)
        k = b.fdiv(b.fmul(drift, a), noise_sq)
        two_k = b.fmul(b.f64(2.0), k)
        er = b.fdiv(b.f64(1.0), b.fadd(b.f64(1.0), b.exp(two_k)))
        rt = b.fadd(t0, b.fmul(b.fdiv(a, drift), b.tanh(k)))
        # Mirror compute()'s zero-drift special case: without the select,
        # drift == 0 yields (a/0) * tanh(0) = inf * 0 = NaN while the
        # reference returns the closed-form limit (found by repro.fuzz).
        near_zero = b.fcmp("olt", b.fabs(drift), b.f64(1e-12))
        rt_limit = b.fadd(t0, b.fdiv(b.fmul(a, a), noise_sq))
        rt = b.select(near_zero, rt_limit, rt)
        er = b.select(near_zero, b.f64(0.5), er)
        return [rt, er]
