"""The cogframe function library.

Every function provides a NumPy reference implementation (used by the
interpretive runner) and an IR template (used by Distill's code generator);
see :mod:`repro.cogframe.functions.base`.
"""

from .base import BaseFunction, EmitContext
from .distributions import AttentionModulatedObservation, GaussianNoise, UniformToRange
from .integrators import (
    AccumulatorIntegrator,
    DriftDiffusionAnalytical,
    DriftDiffusionIntegrator,
    LeakyCompetingIntegrator,
    LeakyIntegrator,
)
from .objective import (
    DistanceFunction,
    EnergyFunction,
    LinearCombination,
    PredatorPreyObjective,
    PursuitAvoidanceAction,
)
from .transfer import Linear, LinearMatrix, Logistic, ReLU, Softmax, Tanh

__all__ = [
    "BaseFunction",
    "EmitContext",
    "Linear",
    "Logistic",
    "ReLU",
    "Tanh",
    "Softmax",
    "LinearMatrix",
    "AccumulatorIntegrator",
    "LeakyIntegrator",
    "LeakyCompetingIntegrator",
    "DriftDiffusionIntegrator",
    "DriftDiffusionAnalytical",
    "GaussianNoise",
    "AttentionModulatedObservation",
    "UniformToRange",
    "LinearCombination",
    "EnergyFunction",
    "PursuitAvoidanceAction",
    "PredatorPreyObjective",
    "DistanceFunction",
]
