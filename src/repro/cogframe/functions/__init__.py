"""The cogframe function library.

Every function provides a NumPy reference implementation (used by the
interpretive runner) and an IR template (used by Distill's code generator);
see :mod:`repro.cogframe.functions.base`.
"""

from .base import BaseFunction, EmitContext
from .distributions import AttentionModulatedObservation, GaussianNoise, UniformToRange
from .integrators import (
    AccumulatorIntegrator,
    DriftDiffusionAnalytical,
    DriftDiffusionIntegrator,
    LeakyCompetingIntegrator,
    LeakyIntegrator,
)
from .objective import (
    DistanceFunction,
    EnergyFunction,
    LinearCombination,
    PredatorPreyObjective,
    PursuitAvoidanceAction,
)
from .transfer import Linear, LinearMatrix, Logistic, ReLU, Softmax, Tanh

#: Registry of every library function under its IR/template name.  This is
#: the introspectable vocabulary shared by the curated models, the test-suite
#: strategies and the generative conformance fuzzer (``repro.fuzz``): anything
#: registered here is considered part of the compilable function library and
#: is fair game for randomly generated models.
FUNCTION_REGISTRY = {
    cls.name: cls
    for cls in (
        Linear,
        Logistic,
        ReLU,
        Tanh,
        Softmax,
        LinearMatrix,
        AccumulatorIntegrator,
        LeakyIntegrator,
        LeakyCompetingIntegrator,
        DriftDiffusionIntegrator,
        DriftDiffusionAnalytical,
        GaussianNoise,
        AttentionModulatedObservation,
        UniformToRange,
        LinearCombination,
        EnergyFunction,
        PursuitAvoidanceAction,
        PredatorPreyObjective,
        DistanceFunction,
    )
}


def list_functions():
    """Names of every registered library function, sorted."""
    return tuple(sorted(FUNCTION_REGISTRY))


def get_function(name: str):
    """The :class:`BaseFunction` subclass registered under ``name``."""
    if name not in FUNCTION_REGISTRY:
        raise KeyError(
            f"unknown function {name!r}; known: {', '.join(list_functions())}"
        )
    return FUNCTION_REGISTRY[name]


__all__ = [
    "BaseFunction",
    "EmitContext",
    "Linear",
    "Logistic",
    "ReLU",
    "Tanh",
    "Softmax",
    "LinearMatrix",
    "AccumulatorIntegrator",
    "LeakyIntegrator",
    "LeakyCompetingIntegrator",
    "DriftDiffusionIntegrator",
    "DriftDiffusionAnalytical",
    "GaussianNoise",
    "AttentionModulatedObservation",
    "UniformToRange",
    "LinearCombination",
    "EnergyFunction",
    "PursuitAvoidanceAction",
    "PredatorPreyObjective",
    "DistanceFunction",
    "FUNCTION_REGISTRY",
    "list_functions",
    "get_function",
]
