"""Stochastic functions: noise injection and attention-dependent observation."""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from .base import BaseFunction, EmitContext


class GaussianNoise(BaseFunction):
    """``out = x + standard_deviation * N(0,1)`` applied elementwise."""

    name = "gaussian_noise"
    needs_rng = True

    def default_params(self) -> Dict[str, object]:
        return {"standard_deviation": 1.0, "mean_offset": 0.0}

    def compute(self, variable, params, state, rng) -> np.ndarray:
        x = np.asarray(variable, dtype=float)
        draws = np.array([rng.normal() for _ in range(x.size)]) if rng is not None else np.zeros_like(x)
        return x + params["mean_offset"] + params["standard_deviation"] * draws

    def emit(self, ctx: EmitContext, inputs: List) -> List:
        b = ctx.builder
        std = ctx.param_scalar("standard_deviation")
        offset = ctx.param_scalar("mean_offset")
        outputs = []
        for x in inputs:
            draw = b.rng_normal(ctx.rng_ptr())
            outputs.append(b.fadd(b.fadd(x, offset), b.fmul(std, draw)))
        return outputs


class AttentionModulatedObservation(BaseFunction):
    """Observation of a true location under limited attention (Obs nodes).

    The observed coordinate of an entity is drawn from a Gaussian centred on
    the true coordinate whose standard deviation shrinks as more attention is
    allocated to that entity:

    ``sigma = base_std / (attention + floor)``
    ``observed_i = true_i + sigma * N(0, 1)``

    The attention level arrives as the *last* input element (projected from
    the Control node); the preceding elements are the true coordinates.  This
    is exactly the structure of the predator-prey model's Obs nodes.
    """

    name = "attention_observation"
    needs_rng = True

    def default_params(self) -> Dict[str, object]:
        return {"base_std": 2.0, "attention_floor": 0.25}

    def output_size(self, input_size: int) -> int:
        return max(input_size - 1, 1)

    def compute(self, variable, params, state, rng) -> np.ndarray:
        values = np.asarray(variable, dtype=float).ravel()
        true_coords, attention = values[:-1], values[-1]
        sigma = params["base_std"] / (attention + params["attention_floor"])
        draws = (
            np.array([rng.normal() for _ in range(true_coords.size)])
            if rng is not None
            else np.zeros_like(true_coords)
        )
        return true_coords + sigma * draws

    def emit(self, ctx: EmitContext, inputs: List) -> List:
        b = ctx.builder
        base_std = ctx.param_scalar("base_std")
        floor = ctx.param_scalar("attention_floor")
        true_coords, attention = inputs[:-1], inputs[-1]
        sigma = b.fdiv(base_std, b.fadd(attention, floor))
        outputs = []
        for coord in true_coords:
            draw = b.rng_normal(ctx.rng_ptr())
            outputs.append(b.fadd(coord, b.fmul(sigma, draw)))
        return outputs


class UniformToRange(BaseFunction):
    """``out = low + (high - low) * U(0,1)`` for each element (stimulus generation)."""

    name = "uniform_range"
    needs_rng = True

    def default_params(self) -> Dict[str, object]:
        return {"low": 0.0, "high": 1.0}

    def compute(self, variable, params, state, rng) -> np.ndarray:
        x = np.asarray(variable, dtype=float)
        low, high = params["low"], params["high"]
        draws = np.array([rng.uniform() for _ in range(x.size)]) if rng is not None else np.zeros_like(x)
        return low + (high - low) * draws

    def emit(self, ctx: EmitContext, inputs: List) -> List:
        b = ctx.builder
        low = ctx.param_scalar("low")
        high = ctx.param_scalar("high")
        span = b.fsub(high, low)
        outputs = []
        for _ in inputs:
            draw = b.rng_uniform(ctx.rng_ptr())
            outputs.append(b.fadd(low, b.fmul(span, draw)))
        return outputs
