"""Transfer functions: elementwise transformations of a mechanism's input."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..prng import CounterRNG
from .base import BaseFunction, EmitContext


class Linear(BaseFunction):
    """``out = slope * x + intercept`` applied elementwise."""

    name = "linear"

    def default_params(self) -> Dict[str, object]:
        return {"slope": 1.0, "intercept": 0.0}

    def compute(self, variable, params, state, rng) -> np.ndarray:
        return params["slope"] * np.asarray(variable, dtype=float) + params["intercept"]

    def emit(self, ctx: EmitContext, inputs: List) -> List:
        b = ctx.builder
        slope = ctx.param_scalar("slope")
        intercept = ctx.param_scalar("intercept")
        return [b.fadd(b.fmul(slope, x), intercept) for x in inputs]


class Logistic(BaseFunction):
    """``out = 1 / (1 + exp(-gain * (x - bias)))`` applied elementwise.

    The paper uses this function as the canonical VRP example: its output is
    always within (0, 1], which floating-point range propagation proves.
    """

    name = "logistic"

    def default_params(self) -> Dict[str, object]:
        return {"gain": 1.0, "bias": 0.0}

    def compute(self, variable, params, state, rng) -> np.ndarray:
        x = np.asarray(variable, dtype=float)
        return 1.0 / (1.0 + np.exp(-params["gain"] * (x - params["bias"])))

    def emit(self, ctx: EmitContext, inputs: List) -> List:
        b = ctx.builder
        gain = ctx.param_scalar("gain")
        bias = ctx.param_scalar("bias")
        return [b.logistic(x, gain, bias) for x in inputs]


class ReLU(BaseFunction):
    """``out = max(0, x) * gain`` applied elementwise."""

    name = "relu"

    def default_params(self) -> Dict[str, object]:
        return {"gain": 1.0}

    def compute(self, variable, params, state, rng) -> np.ndarray:
        x = np.asarray(variable, dtype=float)
        return params["gain"] * np.maximum(x, 0.0)

    def emit(self, ctx: EmitContext, inputs: List) -> List:
        b = ctx.builder
        gain = ctx.param_scalar("gain")
        zero = b.f64(0.0)
        return [b.fmul(gain, b.fmax(x, zero)) for x in inputs]


class Tanh(BaseFunction):
    """``out = tanh(gain * (x - bias))`` applied elementwise."""

    name = "tanh"

    def default_params(self) -> Dict[str, object]:
        return {"gain": 1.0, "bias": 0.0}

    def compute(self, variable, params, state, rng) -> np.ndarray:
        x = np.asarray(variable, dtype=float)
        return np.tanh(params["gain"] * (x - params["bias"]))

    def emit(self, ctx: EmitContext, inputs: List) -> List:
        b = ctx.builder
        gain = ctx.param_scalar("gain")
        bias = ctx.param_scalar("bias")
        return [b.tanh(b.fmul(gain, b.fsub(x, bias))) for x in inputs]


class Softmax(BaseFunction):
    """Numerically stable softmax over the whole input vector."""

    name = "softmax"

    def default_params(self) -> Dict[str, object]:
        return {"gain": 1.0}

    def compute(self, variable, params, state, rng) -> np.ndarray:
        x = params["gain"] * np.asarray(variable, dtype=float)
        shifted = x - np.max(x)
        e = np.exp(shifted)
        return e / np.sum(e)

    def emit(self, ctx: EmitContext, inputs: List) -> List:
        b = ctx.builder
        gain = ctx.param_scalar("gain")
        scaled = [b.fmul(gain, x) for x in inputs]
        maximum = scaled[0]
        for x in scaled[1:]:
            maximum = b.fmax(maximum, x)
        exps = [b.exp(b.fsub(x, maximum)) for x in scaled]
        total = exps[0]
        for e in exps[1:]:
            total = b.fadd(total, e)
        return [b.fdiv(e, total) for e in exps]


class LinearMatrix(BaseFunction):
    """``out = W @ x`` for a statically known weight matrix ``W``.

    The matrix product is fully unrolled at compile time over the shapes
    discovered in the sanitization run — the static-shape specialisation that
    generic JITs cannot perform.
    """

    name = "linear_matrix"

    def __init__(self, matrix, **overrides):
        super().__init__(**overrides)
        self.params["matrix"] = np.asarray(matrix, dtype=float)
        if self.params["matrix"].ndim != 2:
            raise ValueError("LinearMatrix requires a 2-D weight matrix")

    def default_params(self) -> Dict[str, object]:
        return {}

    def output_size(self, input_size: int) -> int:
        return int(self.params["matrix"].shape[0])

    def compute(self, variable, params, state, rng) -> np.ndarray:
        return np.asarray(params["matrix"], dtype=float) @ np.asarray(variable, dtype=float)

    def emit(self, ctx: EmitContext, inputs: List) -> List:
        b = ctx.builder
        matrix = ctx.param("matrix")  # flattened row-major IR values
        rows, cols = self.params["matrix"].shape
        if len(inputs) != cols:
            raise ValueError(
                f"LinearMatrix: expected {cols} inputs, got {len(inputs)}"
            )
        outputs = []
        for r in range(rows):
            acc = None
            for c in range(cols):
                term = b.fmul(matrix[r * cols + c], inputs[c])
                acc = term if acc is None else b.fadd(acc, term)
            outputs.append(acc if acc is not None else b.f64(0.0))
        return outputs
