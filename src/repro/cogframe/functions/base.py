"""Base classes for the cogframe function library.

Every computational building block a mechanism can use (transfer functions,
integrators, noise/distortion functions, objective functions) derives from
:class:`BaseFunction`.  A function provides two things:

* a **reference implementation** (:meth:`compute`) used by the interpretive
  runner — this is the "CPython + PsyNeuLink" baseline of the paper; and
* an **IR template** (:meth:`emit`) used by Distill's code generator — the
  "pre-defined templates which are then specialized to the types with which
  they are called" of paper section 3.4.1.

Templates emit fully unrolled straight-line IR over the statically known
shapes extracted from the sanitization run; polymorphism is resolved at
compile time (monomorphisation), so a Logistic applied to a length-2 vector
and one applied to a length-8 vector become two separate specialisations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..prng import CounterRNG


class EmitContext:
    """Facade handed to function templates during code generation.

    The concrete implementation lives in :mod:`repro.core.node_codegen`; this
    class only documents the interface so that cogframe does not depend on
    the compiler package.
    """

    builder = None  # type: ignore[assignment]

    def param(self, name: str) -> List:  # pragma: no cover - interface
        """IR values of a read-only parameter (flattened, row-major)."""
        raise NotImplementedError

    def param_scalar(self, name: str):  # pragma: no cover - interface
        """IR value of a scalar read-only parameter."""
        raise NotImplementedError

    def load_state(self, name: str) -> List:  # pragma: no cover - interface
        """Current IR values of a read-write state entry."""
        raise NotImplementedError

    def store_state(self, name: str, values: Sequence) -> None:  # pragma: no cover
        """Write new IR values into a read-write state entry."""
        raise NotImplementedError

    def rng_ptr(self):  # pragma: no cover - interface
        """Pointer to this mechanism's PRNG state (key, counter)."""
        raise NotImplementedError

    def constant(self, value: float):  # pragma: no cover - interface
        raise NotImplementedError


class BaseFunction:
    """A library function: parameters + reference semantics + IR template."""

    #: Human-readable name used in generated IR symbol names.
    name = "function"
    #: True if the reference/compiled implementations draw random numbers.
    needs_rng = False

    def __init__(self, **overrides):
        self.params: Dict[str, object] = {}
        for key, default in self.default_params().items():
            self.params[key] = overrides.pop(key, default)
        if overrides:
            unknown = ", ".join(sorted(overrides))
            raise TypeError(f"{type(self).__name__}: unknown parameters {unknown}")

    # -- declarations -----------------------------------------------------------
    def default_params(self) -> Dict[str, object]:
        """Read-only parameters and their defaults (floats or numpy arrays)."""
        return {}

    def state_spec(self, input_size: int) -> Dict[str, np.ndarray]:
        """Read-write state entries and their initial values."""
        return {}

    def output_size(self, input_size: int) -> int:
        """Number of output elements for an input of ``input_size`` elements."""
        return input_size

    # -- reference execution ---------------------------------------------------------
    def compute(
        self,
        variable: np.ndarray,
        params: Dict[str, object],
        state: Dict[str, np.ndarray],
        rng: Optional[CounterRNG],
    ) -> np.ndarray:
        """Reference (NumPy) implementation used by the interpretive runner."""
        raise NotImplementedError

    # -- code generation ---------------------------------------------------------------
    def emit(self, ctx: EmitContext, inputs: List) -> List:
        """Emit unrolled IR computing the function over ``inputs``.

        ``inputs`` is a flat list of scalar IR values; the return value is the
        flat list of scalar IR values of the output.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not provide an IR template"
        )

    # -- helpers -----------------------------------------------------------------------
    def param_array(self, name: str, size: Optional[int] = None) -> np.ndarray:
        """A parameter as a 1-D float array (broadcasting scalars to ``size``)."""
        value = self.params[name]
        arr = np.atleast_1d(np.asarray(value, dtype=float)).ravel()
        if size is not None and arr.size == 1 and size > 1:
            arr = np.full(size, float(arr[0]))
        return arr

    def describe(self) -> str:
        parts = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{type(self).__name__}({parts})"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.describe()
