"""Objective and combination functions (cost/quality/energy computations)."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .base import BaseFunction, EmitContext


class LinearCombination(BaseFunction):
    """``out = scale * sum_i w_i * x_i + offset`` reduced over the whole input."""

    name = "linear_combination"

    def __init__(self, weights=None, **overrides):
        super().__init__(**overrides)
        self.params["weights"] = None if weights is None else np.asarray(weights, dtype=float).ravel()

    def default_params(self) -> Dict[str, object]:
        return {"scale": 1.0, "offset": 0.0}

    def output_size(self, input_size: int) -> int:
        return 1

    def compute(self, variable, params, state, rng) -> np.ndarray:
        x = np.asarray(variable, dtype=float).ravel()
        weights = params.get("weights")
        if weights is None:
            weights = np.ones_like(x)
        total = float(np.dot(weights[: x.size], x))
        return np.array([params["scale"] * total + params["offset"]])

    def emit(self, ctx: EmitContext, inputs: List) -> List:
        b = ctx.builder
        scale = ctx.param_scalar("scale")
        offset = ctx.param_scalar("offset")
        weights = self.params.get("weights")
        acc = None
        for i, x in enumerate(inputs):
            if weights is None:
                term = x
            else:
                term = b.fmul(b.f64(float(weights[i])), x)
            acc = term if acc is None else b.fadd(acc, term)
        if acc is None:
            acc = b.f64(0.0)
        return [b.fadd(b.fmul(scale, acc), offset)]


class EnergyFunction(BaseFunction):
    """Hopfield-style energy used by the Stroop conflict-monitoring model.

    ``E = weight * sum_{i < j} v_i * v_j + bias`` — for the two response
    units of the Botvinick Stroop model this is the classic conflict measure
    ``w * resp_color * resp_word``.
    """

    name = "energy"

    def default_params(self) -> Dict[str, object]:
        return {"weight": 1.0, "bias": 0.0}

    def output_size(self, input_size: int) -> int:
        return 1

    def compute(self, variable, params, state, rng) -> np.ndarray:
        v = np.asarray(variable, dtype=float).ravel()
        total = 0.0
        for i in range(v.size):
            for j in range(i + 1, v.size):
                total += v[i] * v[j]
        return np.array([params["weight"] * total + params["bias"]])

    def emit(self, ctx: EmitContext, inputs: List) -> List:
        b = ctx.builder
        weight = ctx.param_scalar("weight")
        bias = ctx.param_scalar("bias")
        acc = None
        for i in range(len(inputs)):
            for j in range(i + 1, len(inputs)):
                term = b.fmul(inputs[i], inputs[j])
                acc = term if acc is None else b.fadd(acc, term)
        if acc is None:
            acc = b.f64(0.0)
        return [b.fadd(b.fmul(weight, acc), bias)]


class PursuitAvoidanceAction(BaseFunction):
    """Action selection for the predator-prey task.

    The input is the concatenation of the observed player, predator and prey
    positions (2 coordinates each).  The output is a 2-D movement vector that
    points toward the prey and away from the predator:

    ``action = (prey - player) - avoid_gain * (predator - player)``
    """

    name = "pursuit_avoidance"

    def default_params(self) -> Dict[str, object]:
        return {"avoid_gain": 0.5}

    def output_size(self, input_size: int) -> int:
        return 2

    def compute(self, variable, params, state, rng) -> np.ndarray:
        v = np.asarray(variable, dtype=float).ravel()
        player, predator, prey = v[0:2], v[2:4], v[4:6]
        return (prey - player) - params["avoid_gain"] * (predator - player)

    def emit(self, ctx: EmitContext, inputs: List) -> List:
        b = ctx.builder
        avoid = ctx.param_scalar("avoid_gain")
        player, predator, prey = inputs[0:2], inputs[2:4], inputs[4:6]
        outputs = []
        for axis in range(2):
            pursue = b.fsub(prey[axis], player[axis])
            flee = b.fsub(predator[axis], player[axis])
            outputs.append(b.fsub(pursue, b.fmul(avoid, flee)))
        return outputs


class PredatorPreyObjective(BaseFunction):
    """Cost of a move under an attention allocation (predator-prey task).

    Input layout (11 elements): action (2), true player (2), true predator
    (2), true prey (2), allocation (3).  The player takes a bounded step in
    the (noisily observed) action direction; the cost is

    * the distance from the prey after the step,
    * minus ``avoid_cost`` times the distance from the predator (being far
      from the predator is good),
    * ``attention_cost * sum(allocation**2)`` — the cost of paying attention,
    * ``uncertainty_cost * sum(1 / (allocation + floor))`` — the cost of the
      residual perceptual uncertainty left by the allocation (low attention
      means a poorly localised entity).

    Because the step direction is *normalised*, observation noise degrades
    the move nonlinearly, and the explicit uncertainty term trades off
    against the quadratic attention cost: the landscape over the prey
    allocation has an interior minimum, which is the Figure 2 curve.
    """

    name = "predator_prey_objective"

    def default_params(self) -> Dict[str, object]:
        return {
            "avoid_cost": 0.25,
            "attention_cost": 0.02,
            "uncertainty_cost": 2.0,
            "attention_floor": 0.25,
            "step_size": 1.0,
            "epsilon": 1e-6,
        }

    def output_size(self, input_size: int) -> int:
        return 1

    def compute(self, variable, params, state, rng) -> np.ndarray:
        v = np.asarray(variable, dtype=float).ravel()
        action = v[0:2]
        player, predator, prey = v[2:4], v[4:6], v[6:8]
        allocation = v[8:11]
        norm = float(np.sqrt(np.dot(action, action))) + params["epsilon"]
        new_player = player + params["step_size"] * action / norm
        d_prey = float(np.sqrt(np.sum((new_player - prey) ** 2)))
        d_pred = float(np.sqrt(np.sum((new_player - predator) ** 2)))
        attention = float(np.dot(allocation, allocation))
        uncertainty = float(np.sum(1.0 / (allocation + params["attention_floor"])))
        cost = (
            d_prey
            - params["avoid_cost"] * d_pred
            + params["attention_cost"] * attention
            + params["uncertainty_cost"] * uncertainty
        )
        return np.array([cost])

    def emit(self, ctx: EmitContext, inputs: List) -> List:
        b = ctx.builder
        avoid_cost = ctx.param_scalar("avoid_cost")
        attention_cost = ctx.param_scalar("attention_cost")
        uncertainty_cost = ctx.param_scalar("uncertainty_cost")
        attention_floor = ctx.param_scalar("attention_floor")
        step_size = ctx.param_scalar("step_size")
        epsilon = ctx.param_scalar("epsilon")
        action = inputs[0:2]
        player, predator, prey = inputs[2:4], inputs[4:6], inputs[6:8]
        allocation = inputs[8:11]

        def dot(a, b_vec):
            acc = None
            for x, y in zip(a, b_vec):
                term = b.fmul(x, y)
                acc = term if acc is None else b.fadd(acc, term)
            return acc

        norm = b.fadd(b.sqrt(dot(action, action)), epsilon)
        new_player = [
            b.fadd(p, b.fmul(step_size, b.fdiv(a, norm)))
            for p, a in zip(player, action)
        ]
        diff_prey = [b.fsub(n, t) for n, t in zip(new_player, prey)]
        diff_pred = [b.fsub(n, t) for n, t in zip(new_player, predator)]
        d_prey = b.sqrt(dot(diff_prey, diff_prey))
        d_pred = b.sqrt(dot(diff_pred, diff_pred))
        attention = dot(allocation, allocation)
        uncertainty = None
        for a in allocation:
            term = b.fdiv(b.f64(1.0), b.fadd(a, attention_floor))
            uncertainty = term if uncertainty is None else b.fadd(uncertainty, term)
        cost = b.fsub(d_prey, b.fmul(avoid_cost, d_pred))
        cost = b.fadd(cost, b.fmul(attention_cost, attention))
        cost = b.fadd(cost, b.fmul(uncertainty_cost, uncertainty))
        return [cost]


class DistanceFunction(BaseFunction):
    """Euclidean distance between the two halves of the input vector."""

    name = "distance"

    def default_params(self) -> Dict[str, object]:
        return {}

    def output_size(self, input_size: int) -> int:
        return 1

    def compute(self, variable, params, state, rng) -> np.ndarray:
        v = np.asarray(variable, dtype=float).ravel()
        half = v.size // 2
        a, b = v[:half], v[half : 2 * half]
        return np.array([float(np.sqrt(np.sum((a - b) ** 2)))])

    def emit(self, ctx: EmitContext, inputs: List) -> List:
        b = ctx.builder
        half = len(inputs) // 2
        acc = None
        for x, y in zip(inputs[:half], inputs[half : 2 * half]):
            d = b.fsub(x, y)
            term = b.fmul(d, d)
            acc = term if acc is None else b.fadd(acc, term)
        if acc is None:
            acc = b.f64(0.0)
        return [b.sqrt(acc)]
