"""Projections: weighted connections between mechanisms.

A :class:`MappingProjection` carries the output of a sender mechanism (or a
slice of it) into a named input port of a receiver mechanism, optionally
through a weight matrix.  Several projections can converge on the same port;
their contributions are summed — the same combination rule PsyNeuLink's input
ports use, and the rule the compiled code reproduces with unrolled arithmetic.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ModelStructureError


class MappingProjection:
    """A weighted connection ``receiver.port += matrix @ sender.output[slice]``.

    Parameters
    ----------
    sender:
        The sending :class:`~repro.cogframe.mechanisms.Mechanism`.
    receiver:
        The receiving mechanism.
    port:
        Name of the receiver's input port (default ``"input"``).
    matrix:
        ``None`` for the identity, a scalar for uniform scaling, or a 2-D
        array of shape ``(port_size, sender_slice_size)``.
    sender_slice:
        Optional ``(start, length)`` slice of the sender's output to project
        (e.g. a single attention level out of the Control node's allocation
        vector).
    """

    def __init__(
        self,
        sender,
        receiver,
        port: str = "input",
        matrix=None,
        sender_slice: Optional[Tuple[int, int]] = None,
    ):
        self.sender = sender
        self.receiver = receiver
        self.port = port
        self.sender_slice = sender_slice
        if matrix is None or np.isscalar(matrix):
            self.matrix = matrix
        else:
            self.matrix = np.asarray(matrix, dtype=float)
            if self.matrix.ndim != 2:
                raise ModelStructureError(
                    f"projection {self.describe()}: matrix must be 2-D, "
                    f"got shape {self.matrix.shape}"
                )

    # -- shape bookkeeping ---------------------------------------------------------
    def source_size(self) -> int:
        if self.sender_slice is not None:
            return self.sender_slice[1]
        return self.sender.output_size

    def target_size(self) -> int:
        if self.matrix is None or np.isscalar(self.matrix):
            return self.source_size()
        return int(self.matrix.shape[0])

    def validate(self) -> None:
        """Check slice bounds and matrix shape against the connected ports."""
        sender_size = self.sender.output_size
        if self.sender_slice is not None:
            start, length = self.sender_slice
            if start < 0 or length <= 0 or start + length > sender_size:
                raise ModelStructureError(
                    f"projection {self.describe()}: slice ({start}, {length}) out "
                    f"of bounds for sender output of size {sender_size}"
                )
        if self.matrix is not None and not np.isscalar(self.matrix):
            expected_cols = self.source_size()
            if self.matrix.shape[1] != expected_cols:
                raise ModelStructureError(
                    f"projection {self.describe()}: matrix has {self.matrix.shape[1]} "
                    f"columns but the projected sender value has {expected_cols} elements"
                )
        port_size = self.receiver.port_size(self.port)
        if self.target_size() != port_size:
            raise ModelStructureError(
                f"projection {self.describe()}: delivers {self.target_size()} values "
                f"to port {self.port!r} of size {port_size}"
            )

    # -- reference semantics ----------------------------------------------------------
    def apply(self, sender_value: np.ndarray) -> np.ndarray:
        """Compute this projection's contribution for a sender output value."""
        value = np.asarray(sender_value, dtype=float).ravel()
        if self.sender_slice is not None:
            start, length = self.sender_slice
            value = value[start : start + length]
        if self.matrix is None:
            return value
        if np.isscalar(self.matrix):
            return float(self.matrix) * value
        return self.matrix @ value

    def describe(self) -> str:
        slice_part = ""
        if self.sender_slice is not None:
            slice_part = f"[{self.sender_slice[0]}:{self.sender_slice[0] + self.sender_slice[1]}]"
        return f"{self.sender.name}{slice_part} -> {self.receiver.name}.{self.port}"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<MappingProjection {self.describe()}>"
