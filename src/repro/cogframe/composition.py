"""Compositions: the graph structure of a cognitive model.

A composition collects mechanisms and projections, records per-node
activation conditions, the trial termination condition, the designated input
and output nodes and any monitored nodes whose values should be recorded on
every pass.  It is a declarative object: the interpretive runner
(:mod:`repro.cogframe.runner`) and the Distill compiler (:mod:`repro.core`)
both consume the *same* composition — the paper's first design principle
("avoid requiring cognitive scientists to change the source-code of their
models").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ModelStructureError
from .conditions import AfterNPasses, Always, Condition
from .mechanisms import GridSearchControlMechanism, Mechanism
from .projections import MappingProjection


class Composition:
    """A cognitive model: mechanisms, projections and scheduling rules."""

    def __init__(self, name: str = "composition"):
        self.name = name
        self.mechanisms: Dict[str, Mechanism] = {}
        self.projections: List[MappingProjection] = []
        self.conditions: Dict[str, Condition] = {}
        self.termination: Condition = AfterNPasses(1)
        self.max_passes: int = 1
        self.input_nodes: List[str] = []
        self.output_nodes: List[str] = []
        self.monitored_nodes: List[str] = []

    # -- construction ------------------------------------------------------------
    def add_node(
        self,
        mechanism: Mechanism,
        condition: Optional[Condition] = None,
        is_input: bool = False,
        is_output: bool = False,
        monitor: bool = False,
    ) -> Mechanism:
        if mechanism.name in self.mechanisms:
            raise ModelStructureError(
                f"composition {self.name!r} already contains a node named "
                f"{mechanism.name!r}"
            )
        self.mechanisms[mechanism.name] = mechanism
        self.conditions[mechanism.name] = condition or Always()
        if is_input:
            self.input_nodes.append(mechanism.name)
        if is_output:
            self.output_nodes.append(mechanism.name)
        if monitor:
            self.monitored_nodes.append(mechanism.name)
        return mechanism

    def add_projection(
        self,
        sender,
        receiver,
        port: str = "input",
        matrix=None,
        sender_slice: Optional[Tuple[int, int]] = None,
    ) -> MappingProjection:
        sender = self._resolve(sender)
        receiver = self._resolve(receiver)
        projection = MappingProjection(sender, receiver, port, matrix, sender_slice)
        # Shapes are static, so wiring errors can be reported immediately
        # rather than waiting for the sanitization run.
        projection.validate()
        self.projections.append(projection)
        return projection

    def add_linear_pathway(self, mechanisms: Sequence, matrices: Optional[Sequence] = None) -> None:
        """Convenience: chain mechanisms with projections (optionally weighted)."""
        mechanisms = [self._resolve(m) for m in mechanisms]
        for i in range(len(mechanisms) - 1):
            matrix = None
            if matrices is not None and i < len(matrices):
                matrix = matrices[i]
            self.add_projection(mechanisms[i], mechanisms[i + 1], matrix=matrix)

    def set_termination(self, condition: Condition, max_passes: Optional[int] = None) -> None:
        self.termination = condition
        if max_passes is not None:
            self.max_passes = int(max_passes)
        elif isinstance(condition, AfterNPasses):
            self.max_passes = condition.n

    # -- lookup --------------------------------------------------------------------
    def _resolve(self, node) -> Mechanism:
        if isinstance(node, Mechanism):
            if node.name not in self.mechanisms or self.mechanisms[node.name] is not node:
                raise ModelStructureError(
                    f"mechanism {node.name!r} is not part of composition {self.name!r}"
                )
            return node
        if node not in self.mechanisms:
            raise ModelStructureError(
                f"composition {self.name!r} has no node named {node!r}"
            )
        return self.mechanisms[node]

    def node(self, name: str) -> Mechanism:
        return self._resolve(name)

    def condition_for(self, name: str) -> Condition:
        return self.conditions[name]

    def incoming_projections(self, node) -> List[MappingProjection]:
        mech = self._resolve(node)
        return [p for p in self.projections if p.receiver is mech]

    def outgoing_projections(self, node) -> List[MappingProjection]:
        mech = self._resolve(node)
        return [p for p in self.projections if p.sender is mech]

    def control_nodes(self) -> List[GridSearchControlMechanism]:
        return [m for m in self.mechanisms.values() if isinstance(m, GridSearchControlMechanism)]

    def projection_edges(self) -> List[Tuple[str, str]]:
        """Model-level edges (sender name, receiver name), deduplicated."""
        seen = set()
        edges = []
        for projection in self.projections:
            edge = (projection.sender.name, projection.receiver.name)
            if edge not in seen:
                seen.add(edge)
                edges.append(edge)
        return edges

    # -- execution order ----------------------------------------------------------------
    def execution_order(self) -> List[str]:
        """Topological order of nodes (cycles broken by insertion order).

        All nodes read previous-pass values (double buffering), so the order
        only matters for determinism; a topological order is used so that the
        per-pass schedule matches the model's feed-forward structure, exactly
        as PsyNeuLink's scheduler would produce it.
        """
        names = list(self.mechanisms)
        index = {name: i for i, name in enumerate(names)}
        dependencies: Dict[str, set] = {name: set() for name in names}
        for projection in self.projections:
            dependencies[projection.receiver.name].add(projection.sender.name)

        order: List[str] = []
        visited: Dict[str, int] = {}

        def visit(name: str) -> None:
            state = visited.get(name, 0)
            if state == 2:
                return
            if state == 1:
                return  # back edge: cycle broken at this point
            visited[name] = 1
            for dep in sorted(dependencies[name], key=lambda d: index[d]):
                visit(dep)
            visited[name] = 2
            order.append(name)

        for name in names:
            visit(name)
        return order

    # -- validation ------------------------------------------------------------------------
    def validate(self) -> None:
        """Structural checks (complete wiring is checked by the sanitization run)."""
        if not self.mechanisms:
            raise ModelStructureError(f"composition {self.name!r} has no nodes")
        if not self.input_nodes:
            raise ModelStructureError(f"composition {self.name!r} has no input nodes")
        if not self.output_nodes:
            raise ModelStructureError(f"composition {self.name!r} has no output nodes")
        for projection in self.projections:
            projection.validate()
        for name in self.input_nodes + self.output_nodes + self.monitored_nodes:
            if name not in self.mechanisms:
                raise ModelStructureError(
                    f"composition {self.name!r}: designated node {name!r} does not exist"
                )

    # -- misc --------------------------------------------------------------------------------
    def graph_summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "nodes": len(self.mechanisms),
            "projections": len(self.projections),
            "inputs": list(self.input_nodes),
            "outputs": list(self.output_nodes),
            "max_passes": self.max_passes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<Composition {self.name}: {len(self.mechanisms)} nodes, "
            f"{len(self.projections)} projections>"
        )
