"""repro.cogframe — a PsyNeuLink-like cognitive-modelling substrate.

This package provides everything a cognitive scientist needs to *express*
models and everything Distill needs to *compile* them:

* :mod:`repro.cogframe.functions` — the function library (transfer functions,
  integrators, distributions, objective and selection functions), each with a
  NumPy reference implementation and an IR template.
* :mod:`repro.cogframe.mechanisms` — mechanisms (model nodes), including the
  grid-search control mechanism used by the predator-prey model.
* :mod:`repro.cogframe.projections` — weighted connections between ports.
* :mod:`repro.cogframe.composition` — the model graph.
* :mod:`repro.cogframe.conditions` — activation/termination conditions.
* :mod:`repro.cogframe.sanitize` — the sanitization run Distill mines for
  types and shapes.
* :mod:`repro.cogframe.runner` — the interpretive reference engine (the
  "CPython" baseline of the paper's evaluation).
* :mod:`repro.cogframe.prng` — the counter-based PRNG shared by every
  execution engine.
"""

from . import functions, prng
from .composition import Composition
from .conditions import (
    AfterNPasses,
    AfterPass,
    All,
    Always,
    Any,
    AtPass,
    Condition,
    EveryNCalls,
    EveryNPasses,
    Never,
    Not,
    SchedulerState,
    ThresholdCrossed,
)
from .mechanisms import (
    GridSearchControlMechanism,
    InputPort,
    IntegratorMechanism,
    Mechanism,
    ObjectiveMechanism,
    ProcessingMechanism,
    SimulationStep,
    TransferMechanism,
)
from .projections import MappingProjection
from .prng import CounterRNG
from .runner import ReferenceRunner, RunResults, TrialResult, run_reference
from .sanitize import MechanismInfo, SanitizationInfo, sanitize

__all__ = [
    "functions",
    "prng",
    "CounterRNG",
    "Composition",
    "Mechanism",
    "ProcessingMechanism",
    "TransferMechanism",
    "IntegratorMechanism",
    "ObjectiveMechanism",
    "GridSearchControlMechanism",
    "SimulationStep",
    "InputPort",
    "MappingProjection",
    "Condition",
    "Always",
    "Never",
    "AtPass",
    "AfterPass",
    "EveryNPasses",
    "EveryNCalls",
    "All",
    "Any",
    "Not",
    "AfterNPasses",
    "ThresholdCrossed",
    "SchedulerState",
    "sanitize",
    "SanitizationInfo",
    "MechanismInfo",
    "ReferenceRunner",
    "RunResults",
    "TrialResult",
    "run_reference",
]
