"""The interpretive reference runner — the "CPython + PsyNeuLink" baseline.

This engine executes a composition the way the modelling framework the paper
targets does: Python objects everywhere, dictionaries keyed by node and port
names carrying every signal, activation conditions re-evaluated every pass,
per-node execution metadata maintained for the scientist, and values copied
defensively between nodes.  None of this work is algorithmically necessary —
which is precisely the paper's point: Distill strips it away.

Scheduling semantics (shared with the compiled engines):

* a run consists of ``num_trials`` trials; trial ``t`` uses input
  ``inputs[t % len(inputs)]``;
* each trial runs passes ``0 .. max_passes-1``; before each pass (except the
  first) the termination condition is checked;
* within a pass, nodes execute in the composition's topological order if
  their activation condition is satisfied; every node reads the *previous*
  pass's outputs (double buffering) and external inputs, and writes its new
  output;
* mechanism state (integrators, etc.) is reset at the start of every trial;
  PRNG streams persist across trials so that trials see fresh noise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..errors import EngineError, ModelStructureError
from .composition import Composition
from .conditions import SchedulerState
from .mechanisms import GridSearchControlMechanism
from .prng import CounterRNG
from .sanitize import SanitizationInfo, sanitize

InputSpec = Union[Dict[str, Sequence[float]], Sequence[float]]


@dataclass
class TrialResult:
    """Outputs of one trial."""

    outputs: Dict[str, np.ndarray]
    passes: int
    monitored: Dict[str, List[np.ndarray]] = field(default_factory=dict)


@dataclass
class RunResults:
    """Results of a full run (all trials)."""

    model_name: str
    trials: List[TrialResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    engine: str = "reference"
    #: Optional stage breakdown (input construction, execution, output
    #: extraction, compilation) filled in by the compiled engines (Figure 7).
    breakdown: Dict[str, float] = field(default_factory=dict)

    def final_outputs(self, node: str) -> np.ndarray:
        """Stack the final output of ``node`` across trials -> (trials, size)."""
        return np.array([trial.outputs[node] for trial in self.trials])

    def monitored_series(self, node: str, trial: int = 0) -> np.ndarray:
        return np.array(self.trials[trial].monitored[node])

    def pass_counts(self) -> List[int]:
        return [trial.passes for trial in self.trials]


def normalize_inputs(
    composition: Composition, inputs: Sequence[InputSpec]
) -> List[Dict[str, np.ndarray]]:
    """Normalise user-provided inputs to a list of per-node dictionaries."""
    normalized: List[Dict[str, np.ndarray]] = []
    for i, spec in enumerate(inputs):
        if isinstance(spec, dict):
            entry = {}
            for name in composition.input_nodes:
                if name not in spec:
                    raise EngineError(f"input #{i} is missing a value for node {name!r}")
                entry[name] = np.asarray(spec[name], dtype=float).ravel()
        else:
            flat = np.asarray(spec, dtype=float).ravel()
            entry = {}
            offset = 0
            for name in composition.input_nodes:
                size = composition.mechanisms[name].output_size
                entry[name] = flat[offset : offset + size]
                offset += size
            if offset != flat.size:
                raise EngineError(
                    f"input #{i}: expected {offset} values for nodes "
                    f"{composition.input_nodes}, got {flat.size}"
                )
        for name, value in entry.items():
            expected = composition.mechanisms[name].output_size
            if value.size != expected:
                raise EngineError(
                    f"input #{i}: node {name!r} expects {expected} values, got {value.size}"
                )
        normalized.append(entry)
    return normalized


class ReferenceRunner:
    """Interpretive execution engine for compositions."""

    def __init__(self, composition: Composition, seed: int = 0, sanitization: Optional[SanitizationInfo] = None):
        self.composition = composition
        self.seed = seed
        self.sanitization = sanitization or sanitize(composition, seed=seed)
        order = self.sanitization.execution_order
        self._order = order
        # One independent, persistent PRNG stream per mechanism.
        self._rngs: Dict[str, CounterRNG] = {
            name: CounterRNG(seed, stream=index)
            for index, name in enumerate(order)
            if composition.mechanisms[name].needs_rng
        }
        # Execution metadata maintained for the modeller (and, incidentally,
        # a faithful source of baseline overhead).
        self.execution_counts: Dict[str, int] = {name: 0 for name in order}
        self.execution_history: List[Dict[str, object]] = []

    # -- public API ----------------------------------------------------------------------
    def run(self, inputs: Sequence[InputSpec], num_trials: Optional[int] = None) -> RunResults:
        """Run the composition and return per-trial results."""
        composition = self.composition
        input_sets = normalize_inputs(composition, inputs)
        if not input_sets:
            raise EngineError("run requires at least one input set")
        if num_trials is None:
            num_trials = len(input_sets)

        results = RunResults(model_name=composition.name, engine="reference")
        started = time.perf_counter()

        for trial_index in range(num_trials):
            external = input_sets[trial_index % len(input_sets)]
            results.trials.append(self._run_trial(trial_index, external))

        results.wall_seconds = time.perf_counter() - started
        return results

    # -- trial execution --------------------------------------------------------------------
    def _run_trial(self, trial_index: int, external: Dict[str, np.ndarray]) -> TrialResult:
        composition = self.composition
        mechanisms = composition.mechanisms
        max_passes = composition.max_passes

        # Fresh per-trial state; persistent RNG streams.
        states: Dict[str, Dict[str, np.ndarray]] = {
            name: mechanisms[name].state_spec() for name in self._order
        }
        previous: Dict[str, np.ndarray] = {
            name: np.zeros(mechanisms[name].output_size) for name in self._order
        }
        current: Dict[str, np.ndarray] = {name: value.copy() for name, value in previous.items()}
        call_counts: Dict[str, int] = {name: 0 for name in self._order}
        monitored: Dict[str, List[np.ndarray]] = {
            name: [] for name in composition.monitored_nodes
        }

        passes_run = 0
        for pass_index in range(max_passes):
            scheduler_state = SchedulerState(
                pass_index=pass_index,
                trial_index=trial_index,
                call_counts=dict(call_counts),
                outputs=previous,
            )
            if pass_index > 0 and composition.termination.is_satisfied(scheduler_state):
                break
            for name in self._order:
                mech = mechanisms[name]
                condition = composition.conditions[name]
                if not condition.is_satisfied(scheduler_state):
                    continue
                variable = self._collect_variable(mech, previous, external)
                rng = self._rngs.get(name)
                if isinstance(mech, GridSearchControlMechanism):
                    states[name]["eval_epoch"] = np.array(
                        [float(trial_index * max_passes + pass_index)]
                    )
                value = mech.execute(variable, states[name], rng)
                current[name] = np.array(value, dtype=float, copy=True)
                call_counts[name] += 1
                self.execution_counts[name] += 1
                # Metadata of the kind modelling frameworks keep per execution.
                self.execution_history.append(
                    {
                        "trial": trial_index,
                        "pass": pass_index,
                        "node": name,
                        "output_norm": float(np.sum(np.abs(current[name]))),
                    }
                )
            # End of pass: current values become the previous values.
            for name in self._order:
                previous[name] = current[name].copy()
            for name in composition.monitored_nodes:
                monitored[name].append(previous[name].copy())
            passes_run = pass_index + 1

        outputs = {
            name: previous[name].copy() for name in composition.output_nodes
        }
        return TrialResult(outputs=outputs, passes=passes_run, monitored=monitored)

    # -- input collection -------------------------------------------------------------------
    def _collect_variable(
        self,
        mech,
        previous: Dict[str, np.ndarray],
        external: Dict[str, np.ndarray],
    ) -> np.ndarray:
        composition = self.composition
        port_values: Dict[str, np.ndarray] = {
            port.name: np.zeros(port.size) for port in mech.input_ports
        }
        if mech.name in composition.input_nodes:
            # External stimulus drives the (first port of the) input node.
            stimulus = external[mech.name]
            first_port = mech.input_ports[0].name
            port_values[first_port] = port_values[first_port] + stimulus
        for projection in composition.incoming_projections(mech):
            contribution = projection.apply(previous[projection.sender.name])
            port_values[projection.port] = port_values[projection.port] + contribution
        return np.concatenate([port_values[port.name] for port in mech.input_ports])


def run_reference(
    composition: Composition,
    inputs: Sequence[InputSpec],
    num_trials: Optional[int] = None,
    seed: int = 0,
) -> RunResults:
    """Convenience wrapper: sanitize, build a runner, run."""
    return ReferenceRunner(composition, seed=seed).run(inputs, num_trials)
