"""Command-line entry point: ``python -m repro.fuzz``.

Runs a conformance campaign and prints the report table; exits non-zero when
any generated model diverges.  Typical invocations::

    python -m repro.fuzz --seed 0 --n-models 25
    python -m repro.fuzz --seed 1000 --n-models 200 --out-dir fuzz-reproducers
    python -m repro.fuzz --engines compiled ir-interp --pipelines "default<O2>"
"""

from __future__ import annotations

import argparse
import sys

from . import DEFAULT_PIPELINES, run_campaign


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Generative cross-engine conformance campaign.",
    )
    parser.add_argument("--seed", type=int, default=0, help="first model seed")
    parser.add_argument(
        "--n-models", type=int, default=25, help="number of models to generate"
    )
    parser.add_argument(
        "--pipelines",
        nargs="+",
        default=list(DEFAULT_PIPELINES),
        help="pipeline texts to compile each model with (default: O0..O3)",
    )
    parser.add_argument(
        "--engines",
        nargs="+",
        default=None,
        help="engines to compare (default: every registered engine)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker count for parallel engines"
    )
    parser.add_argument(
        "--out-dir",
        default=None,
        help="directory for shrunk pytest reproducers of any failures",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip delta-debugging reduction of failures",
    )
    parser.add_argument(
        "--no-reference",
        action="store_true",
        help="skip the interpretive reference-runner leg",
    )
    parser.add_argument(
        "--sanitizer",
        action="store_true",
        help=(
            "add the sanitizer cross-validation leg: instrumented compile of "
            "the first pipeline; traps on lint-clean models fail the campaign"
        ),
    )
    parser.add_argument(
        "--incremental",
        action="store_true",
        help=(
            "add the incremental-recompile oracle leg: perturb one parameter, "
            "patch the live model via recompile(), and demand bitwise equality "
            "with a cold full compile of the edited model on every engine"
        ),
    )
    parser.add_argument(
        "--lane",
        action="store_true",
        help=(
            "add the batched-lane oracle leg: a small run_batch on the lane "
            "engine must reproduce the scalar compiled engine's per-element "
            "buffers (bitwise, ulp-toleranced only for rng_normal values) "
            "and final PRNG counters"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-model progress lines"
    )
    args = parser.parse_args(argv)

    report = run_campaign(
        seed=args.seed,
        n_models=args.n_models,
        pipelines=args.pipelines,
        engines=args.engines,
        workers=args.workers,
        check_reference=not args.no_reference,
        check_sanitizer=args.sanitizer,
        check_incremental=args.incremental,
        check_lane=args.lane,
        shrink=not args.no_shrink,
        out_dir=args.out_dir,
        progress=None if args.quiet else lambda line: print(line, flush=True),
    )
    print()
    print(report.format_table())
    summary = report.summary()
    print(
        f"\n{summary['models']} models, {summary['legs']} legs, "
        f"{summary['failures']} failing, {summary['elapsed_seconds']}s"
    )
    return 1 if report.failures else 0


if __name__ == "__main__":
    sys.exit(main())
