"""Seeded random model generation for the conformance fuzzer.

The generator composes models from exactly the vocabulary the curated models
use — the function registry (:data:`repro.cogframe.functions.FUNCTION_REGISTRY`),
the condition registry (:data:`repro.cogframe.conditions.CONDITION_REGISTRY`),
grid-search control mechanisms and weighted/sliced projections — so every
generated model is, by construction, inside the compilable subset.  Topology
includes feed-forward chains, fan-in/fan-out, feedback cycles (legal under
the double-buffered pass semantics) and self-loops.

A generated model is first captured as a declarative :class:`ModelSpec` whose
``to_source()`` emits a *self-contained* Python module re-building the same
composition.  ``build()`` executes that source, so the composition the oracle
checks and the composition a written reproducer re-builds are guaranteed to
be the same model — there is no separate (and divergence-prone) in-memory
construction path.  The spec is also the unit the delta-debugging reducer
(:mod:`repro.fuzz.reduce`) mutates.

Grid-cost *ties* are a deliberate focus: with :data:`TIE_BIAS` probability
the generator quantises objective weights and allocation levels to small
integers so that many grid points produce exactly equal costs, driving the
reservoir-sampling tie-break draws whose PRNG bookkeeping PR 2 showed to be
the hardest thing to keep bit-identical across engines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cogframe.conditions import ACTIVATION_CONDITIONS, CONDITION_REGISTRY
from ..cogframe.functions import FUNCTION_REGISTRY

__all__ = [
    "FunctionSpec",
    "ConditionSpec",
    "MechanismSpec",
    "StepSpec",
    "ControlSpec",
    "ProjectionSpec",
    "ModelSpec",
    "generate_model_spec",
    "generate_scale_spec",
    "perturb_spec",
    "ELEMENTWISE_FUNCTIONS",
    "REDUCER_FUNCTIONS",
    "TIE_BIAS",
]

# ---------------------------------------------------------------------------
# Vocabulary (validated against the cogframe registries at import time)
# ---------------------------------------------------------------------------

#: Size-preserving functions (usable anywhere, required for input nodes whose
#: external stimulus must match the first port's size).
ELEMENTWISE_FUNCTIONS: Tuple[str, ...] = (
    "linear",
    "logistic",
    "relu",
    "tanh",
    "softmax",
    "gaussian_noise",
    "uniform_range",
    "accumulator",
    "leaky_integrator",
    "lca",
)

#: Functions reducing an arbitrary input to a fixed-size output.
REDUCER_FUNCTIONS: Tuple[str, ...] = (
    "linear_combination",
    "energy",
    "distance",
    "ddm_integrator",
    "ddm_analytical",
)

#: Objective candidates for generated grid-search pipelines (must be n -> 1).
OBJECTIVE_FUNCTIONS: Tuple[str, ...] = ("linear_combination", "energy", "distance")

_missing = [
    name
    for name in ELEMENTWISE_FUNCTIONS + REDUCER_FUNCTIONS + ("linear_matrix",)
    if name not in FUNCTION_REGISTRY
]
if _missing:  # pragma: no cover - registry drift guard
    raise RuntimeError(f"fuzz vocabulary references unregistered functions: {_missing}")

_missing = [name for name in ACTIVATION_CONDITIONS if name not in CONDITION_REGISTRY]
if _missing:  # pragma: no cover - registry drift guard
    raise RuntimeError(f"fuzz vocabulary references unregistered conditions: {_missing}")

#: Probability that a control mechanism's cost landscape is quantised to
#: provoke exact grid-cost ties (reservoir-sampling PRNG coverage).
TIE_BIAS = 0.45


# ---------------------------------------------------------------------------
# Spec dataclasses
# ---------------------------------------------------------------------------


@dataclass
class FunctionSpec:
    """A library function by registry name plus constructor parameters."""

    name: str
    params: Dict[str, object] = field(default_factory=dict)

    def to_code(self) -> str:
        cls = FUNCTION_REGISTRY[self.name].__name__
        args = ", ".join(f"{key}={value!r}" for key, value in self.params.items())
        return f"F.{cls}({args})"


@dataclass
class ConditionSpec:
    """A condition tree by registry kind (class name)."""

    kind: str
    args: List[object] = field(default_factory=list)
    children: List["ConditionSpec"] = field(default_factory=list)

    def to_code(self) -> str:
        parts = [repr(a) for a in self.args]
        parts += [child.to_code() for child in self.children]
        return f"C.{self.kind}({', '.join(parts)})"


@dataclass
class MechanismSpec:
    name: str
    kind: str  # "processing" | "integrator" | "objective"
    function: FunctionSpec
    ports: List[Tuple[str, int]]
    condition: Optional[ConditionSpec] = None
    is_input: bool = False
    is_output: bool = False
    monitor: bool = False

    _KIND_CLASS = {
        "processing": "ProcessingMechanism",
        "integrator": "IntegratorMechanism",
        "objective": "ObjectiveMechanism",
    }

    @property
    def input_size(self) -> int:
        return sum(size for _, size in self.ports)

    def to_code(self, var: str) -> List[str]:
        cls = self._KIND_CLASS[self.kind]
        if len(self.ports) == 1 and self.ports[0][0] == "input":
            shape = f"size={self.ports[0][1]}"
        else:
            port_list = ", ".join(f"InputPort({n!r}, {s})" for n, s in self.ports)
            shape = f"input_ports=[{port_list}]"
        lines = [f"{var} = {cls}({self.name!r}, {self.function.to_code()}, {shape})"]
        flags = []
        if self.condition is not None:
            flags.append(f"condition={self.condition.to_code()}")
        for flag in ("is_input", "is_output", "monitor"):
            if getattr(self, flag):
                flags.append(f"{flag}=True")
        lines.append(f"comp.add_node({var}{', ' if flags else ''}{', '.join(flags)})")
        return lines


@dataclass
class StepSpec:
    """One stage of a generated control-evaluation pipeline.

    ``SimulationStep`` maps sources to input ports positionally (one source
    per port), so the step mechanism declares one port per source with the
    source's width.
    """

    name: str
    function: FunctionSpec
    #: Source tuples exactly as :class:`SimulationStep` consumes them.
    sources: List[Tuple]
    #: Width of each source, in order (becomes the port sizes).
    source_sizes: List[int]

    def to_code(self, var: str) -> str:
        """Construction of the step's mechanism object (a composition node)."""
        fn = self.function.to_code()
        if len(self.sources) == 1:
            shape = f"size={self.source_sizes[0]}"
        else:
            ports = ", ".join(
                f"InputPort('p{i}', {size})" for i, size in enumerate(self.source_sizes)
            )
            shape = f"input_ports=[{ports}]"
        return f"{var} = ProcessingMechanism({self.name!r}, {fn}, {shape})"

    def to_step_code(self, var: str) -> str:
        sources = ", ".join(repr(tuple(s)) for s in self.sources)
        return f"SimulationStep({var}, [{sources}])"


@dataclass
class ControlSpec:
    name: str
    input_size: int
    levels: List[List[float]]
    steps: List[StepSpec]
    objective_step: str
    condition: Optional[ConditionSpec] = None
    is_output: bool = True
    monitor: bool = False

    @property
    def num_signals(self) -> int:
        return len(self.levels)

    @property
    def grid_size(self) -> int:
        size = 1
        for lv in self.levels:
            size *= len(lv)
        return size

    def to_code(self, var: str) -> List[str]:
        # Step mechanisms are real composition nodes, exactly as the curated
        # predator-prey model wires its Obs/Action/Objective stages: the
        # compiler mines their shapes from the sanitization run and the same
        # objects appear in the controller's evaluation pipeline.
        lines: List[str] = []
        step_vars: Dict[str, str] = {}
        for index, step in enumerate(self.steps):
            step_var = f"{var}_s{index}"
            step_vars[step.name] = step_var
            lines.append(step.to_code(step_var))
        steps = ",\n        ".join(
            step.to_step_code(step_vars[step.name]) for step in self.steps
        )
        lines += [
            f"{var} = GridSearchControlMechanism(",
            f"    {self.name!r},",
            f"    input_size={self.input_size},",
            f"    levels={self.levels!r},",
            f"    steps=[\n        {steps},\n    ],",
            f"    objective_step={self.objective_step!r},",
            ")",
        ]
        flags = []
        if self.condition is not None:
            flags.append(f"condition={self.condition.to_code()}")
        if self.is_output:
            flags.append("is_output=True")
        if self.monitor:
            flags.append("monitor=True")
        lines.append(f"comp.add_node({var}{', ' if flags else ''}{', '.join(flags)})")
        for step in self.steps:
            lines.append(f"comp.add_node({step_vars[step.name]})")
        return lines


@dataclass
class ProjectionSpec:
    sender: str
    receiver: str
    port: str = "input"
    #: ``None`` (identity), a scalar, or a nested list (2-D matrix).
    matrix: object = None
    sender_slice: Optional[Tuple[int, int]] = None

    def to_code(self) -> str:
        args = [repr(self.sender), repr(self.receiver)]
        if self.port != "input":
            args.append(f"port={self.port!r}")
        if self.matrix is not None:
            args.append(f"matrix={self.matrix!r}")
        if self.sender_slice is not None:
            args.append(f"sender_slice={tuple(self.sender_slice)!r}")
        return f"comp.add_projection({', '.join(args)})"


@dataclass
class ModelSpec:
    """A complete generated model plus its run configuration."""

    name: str
    seed: int
    mechanisms: List[MechanismSpec]
    projections: List[ProjectionSpec]
    termination: ConditionSpec
    max_passes: int
    control: Optional[ControlSpec] = None
    inputs: List[List[float]] = field(default_factory=list)
    num_trials: int = 2
    run_seed: int = 0

    # -- summaries -------------------------------------------------------------
    def node_names(self) -> List[str]:
        names = [m.name for m in self.mechanisms]
        if self.control is not None:
            names.append(self.control.name)
        return names

    def summary(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "mechanisms": len(self.mechanisms) + (1 if self.control else 0),
            "projections": len(self.projections),
            "grid": self.control.grid_size if self.control else 0,
            "max_passes": self.max_passes,
            "trials": self.num_trials,
        }

    # -- source emission --------------------------------------------------------
    def to_source(self) -> str:
        """A self-contained module that rebuilds this model.

        Defines ``build_model() -> Composition`` plus the run configuration
        constants ``INPUTS``, ``NUM_TRIALS`` and ``RUN_SEED``.  ``build()``
        executes exactly this source, so reproducer files and the in-process
        oracle are guaranteed to check the same composition.
        """
        body: List[str] = []
        for index, mech in enumerate(self.mechanisms):
            body.extend(mech.to_code(f"m{index}"))
        if self.control is not None:
            body.extend(self.control.to_code("ctl"))
        for projection in self.projections:
            body.append(projection.to_code())
        body.append(
            f"comp.set_termination({self.termination.to_code()}, "
            f"max_passes={self.max_passes})"
        )
        indented = "\n".join(f"    {line}" for line in body)
        return f'''\
"""Model {self.name!r} generated by repro.fuzz (seed {self.seed})."""

from repro.cogframe import (
    Composition,
    GridSearchControlMechanism,
    InputPort,
    IntegratorMechanism,
    ObjectiveMechanism,
    ProcessingMechanism,
    SimulationStep,
)
from repro.cogframe import conditions as C
from repro.cogframe import functions as F

INPUTS = {self.inputs!r}
NUM_TRIALS = {self.num_trials}
RUN_SEED = {self.run_seed}


def build_model():
    comp = Composition({self.name!r})
{indented}
    return comp
'''

    def build(self):
        """Build the composition by executing :meth:`to_source`."""
        namespace: Dict[str, object] = {}
        exec(compile(self.to_source(), f"<fuzz:{self.name}>", "exec"), namespace)
        return namespace["build_model"]()


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------


def _round(rng: random.Random, lo: float, hi: float, digits: int = 3) -> float:
    """A uniform float rounded so that ``repr`` stays short in reproducers."""
    return round(rng.uniform(lo, hi), digits)


def _function_params(rng: random.Random, name: str) -> Dict[str, object]:
    """Constructor parameters for one library function."""
    if name == "linear":
        return {"slope": _round(rng, -2.0, 2.0), "intercept": _round(rng, -1.0, 1.0)}
    if name == "logistic":
        return {"gain": _round(rng, 0.2, 3.0), "bias": _round(rng, -1.0, 1.0)}
    if name == "relu":
        return {"gain": _round(rng, 0.2, 2.0)}
    if name == "tanh":
        return {"gain": _round(rng, 0.2, 2.0), "bias": _round(rng, -1.0, 1.0)}
    if name == "softmax":
        return {"gain": _round(rng, 0.5, 2.0)}
    if name == "gaussian_noise":
        return {
            "standard_deviation": _round(rng, 0.0, 1.0),
            "mean_offset": _round(rng, -0.5, 0.5),
        }
    if name == "uniform_range":
        low = _round(rng, -1.0, 0.5)
        return {"low": low, "high": round(low + rng.uniform(0.1, 2.0), 3)}
    if name == "accumulator":
        return {"rate": _round(rng, -1.5, 1.5), "noise": rng.choice([0.0, 0.25, 1.0])}
    if name == "leaky_integrator":
        return {
            "rate": _round(rng, 0.2, 1.5),
            "leak": _round(rng, 0.0, 0.5),
            "noise": rng.choice([0.0, 0.5]),
            "time_step": rng.choice([0.1, 0.05]),
        }
    if name == "lca":
        return {
            "leak": _round(rng, 0.0, 0.5),
            "competition": _round(rng, 0.0, 0.5),
            "noise": rng.choice([0.0, 0.5]),
            "time_step": rng.choice([0.1, 0.05]),
            "non_negative": rng.choice([0.0, 1.0]),
        }
    if name == "ddm_integrator":
        return {
            "rate": _round(rng, 0.2, 2.0),
            "noise": rng.choice([0.0, 1.0]),
            "time_step": 0.01,
        }
    if name == "ddm_analytical":
        return {
            "drift_rate": _round(rng, 0.2, 2.0),
            "threshold": _round(rng, 0.5, 2.0),
            "noise": _round(rng, 0.5, 1.5),
        }
    if name == "energy":
        return {"weight": _round(rng, -1.0, 1.0), "bias": _round(rng, -0.5, 0.5)}
    if name == "distance":
        return {}
    if name == "linear_combination":
        return {"scale": _round(rng, -1.5, 1.5), "offset": _round(rng, -1.0, 1.0)}
    raise ValueError(f"no parameter recipe for function {name!r}")


def _matrix(rng: random.Random, rows: int, cols: int, quantised: bool) -> List[List[float]]:
    if quantised:
        choices = [-1.0, 0.0, 0.0, 1.0]
        return [[rng.choice(choices) for _ in range(cols)] for _ in range(rows)]
    return [[_round(rng, -1.0, 1.0) for _ in range(cols)] for _ in range(rows)]


def _condition(
    rng: random.Random,
    node_names: Sequence[str],
    max_passes: int,
    depth: int = 0,
) -> ConditionSpec:
    kinds = list(ACTIVATION_CONDITIONS)
    if depth >= 1:
        kinds = [k for k in kinds if k not in ("All", "Any", "Not")]
    # Never starves a node completely; keep it rare.
    weights = {"Never": 0.2, "All": 0.5, "Any": 0.5, "Not": 0.5}
    kind = rng.choices(kinds, weights=[weights.get(k, 1.0) for k in kinds])[0]
    if kind == "Always" or kind == "Never":
        return ConditionSpec(kind)
    if kind == "AtPass":
        return ConditionSpec(kind, [rng.randrange(0, max_passes)])
    if kind == "AfterPass":
        return ConditionSpec(kind, [rng.randrange(0, max_passes)])
    if kind == "EveryNPasses":
        n = rng.randint(1, 3)
        return ConditionSpec(kind, [n, rng.randrange(0, n)])
    if kind == "EveryNCalls":
        return ConditionSpec(kind, [rng.choice(list(node_names)), rng.randint(1, 3)])
    children = [
        _condition(rng, node_names, max_passes, depth + 1)
        for _ in range(1 if kind == "Not" else 2)
    ]
    return ConditionSpec(kind, [], children)


def _projection_between(
    rng: random.Random,
    sender: str,
    sender_size: int,
    receiver: str,
    port: str,
    port_size: int,
    quantised: bool,
) -> ProjectionSpec:
    """A shape-correct projection sender -> receiver.port."""
    if sender_size == port_size and rng.random() < 0.55:
        matrix = None if rng.random() < 0.7 else _round(rng, -1.5, 1.5)
        return ProjectionSpec(sender, receiver, port, matrix)
    if sender_size > port_size and rng.random() < 0.5:
        start = rng.randrange(0, sender_size - port_size + 1)
        return ProjectionSpec(sender, receiver, port, None, (start, port_size))
    return ProjectionSpec(
        sender, receiver, port, _matrix(rng, port_size, sender_size, quantised)
    )


def _output_size(spec: MechanismSpec) -> int:
    """Output size of a generated mechanism (mirrors the function library)."""
    name = spec.function.name
    if name in ("linear_combination", "energy", "distance", "ddm_integrator"):
        return 1
    if name == "ddm_analytical":
        return 2
    if name == "linear_matrix":
        return len(spec.function.params["matrix"])
    return spec.input_size


def _control_spec(rng: random.Random, index: int, input_size: int) -> ControlSpec:
    tie_biased = rng.random() < TIE_BIAS
    num_signals = rng.randint(1, 2)
    levels: List[List[float]] = []
    for _ in range(num_signals):
        count = rng.randint(2, 3)
        if tie_biased:
            levels.append([float(v) for v in rng.sample(range(0, 4), count)])
        else:
            values = sorted(_round(rng, 0.0, 2.0) for _ in range(count))
            levels.append(values)

    steps: List[StepSpec] = []
    sources: List[Tuple] = [("allocation", -1)]
    source_sizes: List[int] = [num_signals]
    if rng.random() < 0.6:
        length = rng.randint(1, input_size)
        start = rng.randrange(0, input_size - length + 1)
        sources.append(("input", start, length))
        source_sizes.append(length)
    if rng.random() < 0.4:
        # A stochastic intermediate step: per-evaluation PRNG coverage.
        noise_len = rng.randint(1, input_size)
        noise_start = rng.randrange(0, input_size - noise_len + 1)
        steps.append(
            StepSpec(
                name=f"noise{index}",
                function=FunctionSpec(
                    "gaussian_noise", _function_params(rng, "gaussian_noise")
                ),
                sources=[("input", noise_start, noise_len)],
                source_sizes=[noise_len],
            )
        )
        sources.append(("step", f"noise{index}"))
        source_sizes.append(noise_len)
    score_size = sum(source_sizes)

    objective = rng.choice(OBJECTIVE_FUNCTIONS)
    params = _function_params(rng, objective)
    if objective == "linear_combination":
        if tie_biased:
            params["scale"] = rng.choice([0.0, 1.0])
            params["offset"] = float(rng.randint(-1, 1))
            params["weights"] = [float(rng.choice([-1, 0, 1])) for _ in range(score_size)]
        else:
            params["weights"] = [_round(rng, -1.0, 1.0) for _ in range(score_size)]
    elif tie_biased and objective == "energy":
        params["weight"] = float(rng.choice([0, 1]))
        params["bias"] = float(rng.randint(0, 2))
    steps.append(
        StepSpec(
            name=f"score{index}",
            function=FunctionSpec(objective, params),
            sources=sources,
            source_sizes=source_sizes,
        )
    )
    return ControlSpec(
        name=f"ctl{index}",
        input_size=input_size,
        levels=levels,
        steps=steps,
        objective_step=f"score{index}",
        is_output=True,
        monitor=rng.random() < 0.5,
    )


def generate_model_spec(seed: int) -> ModelSpec:
    """Generate one random, structurally valid model spec from ``seed``.

    The same seed always yields the same spec (the generator is driven by a
    private :class:`random.Random`), which is what makes every campaign —
    and every reproducer file — replayable from its seed alone.
    """
    rng = random.Random(seed ^ 0x5EED5EED)
    max_passes = rng.randint(2, 5)
    n_mech = rng.randint(2, 5)
    with_control = rng.random() < 0.4

    mechanisms: List[MechanismSpec] = []
    for i in range(n_mech):
        is_input = i == 0 or (i == 1 and rng.random() < 0.25)
        if is_input:
            # Input nodes keep stimulus shape: single port + elementwise fn.
            size = rng.randint(1, 3)
            name = rng.choice(ELEMENTWISE_FUNCTIONS)
            ports = [("input", size)]
            kind = "integrator" if name in ("accumulator", "leaky_integrator", "lca") else "processing"
        else:
            if rng.random() < 0.2:
                ports = [("a", rng.randint(1, 2)), ("b", rng.randint(1, 2))]
            else:
                ports = [("input", rng.randint(1, 3))]
            total = sum(s for _, s in ports)
            pool = list(ELEMENTWISE_FUNCTIONS) + list(REDUCER_FUNCTIONS)
            if rng.random() < 0.15:
                name = "linear_matrix"
            else:
                name = rng.choice(pool)
            if name == "distance" and total < 2:
                name = "linear_combination"
            kind = (
                "integrator"
                if name in ("accumulator", "leaky_integrator", "lca", "ddm_integrator")
                else ("objective" if name in REDUCER_FUNCTIONS else "processing")
            )
        if name == "linear_matrix":
            total = sum(s for _, s in ports)
            params: Dict[str, object] = {
                "matrix": _matrix(rng, rng.randint(1, 3), total, rng.random() < 0.3)
            }
        elif name == "linear_combination":
            total = sum(s for _, s in ports)
            params = _function_params(rng, name)
            if rng.random() < 0.5:
                params["weights"] = [_round(rng, -1.0, 1.0) for _ in range(total)]
        else:
            params = _function_params(rng, name)
        mechanisms.append(
            MechanismSpec(
                name=f"n{i}",
                kind=kind,
                function=FunctionSpec(name, params),
                ports=list(ports),
                is_input=is_input,
                monitor=rng.random() < 0.3,
            )
        )

    sizes = {m.name: _output_size(m) for m in mechanisms}
    port_table = {m.name: list(m.ports) for m in mechanisms}

    control: Optional[ControlSpec] = None
    if with_control:
        control = _control_spec(rng, n_mech, rng.randint(1, 3))
        sizes[control.name] = control.num_signals
        port_table[control.name] = [("input", control.input_size)]

    names = [m.name for m in mechanisms]
    all_names = names + ([control.name] if control else [])

    projections: List[ProjectionSpec] = []
    quantised = rng.random() < 0.3
    # Forward edges: every non-input mechanism gets at least one feeder.
    for j, mech in enumerate(mechanisms[1:], start=1):
        feeders = rng.randint(1, min(2, j))
        for sender in rng.sample(names[:j], feeders):
            port, port_size = rng.choice(port_table[mech.name])
            projections.append(
                _projection_between(
                    rng, sender, sizes[sender], mech.name, port, port_size, quantised
                )
            )
    if control is not None:
        # The controller observes some upstream node...
        sender = rng.choice(names)
        projections.append(
            _projection_between(
                rng, sender, sizes[sender], control.name, "input",
                control.input_size, quantised,
            )
        )
        # ... and with some probability feeds its allocation downstream.
        if len(mechanisms) > 1 and rng.random() < 0.7:
            receiver = rng.choice(mechanisms[1:])
            port, port_size = rng.choice(port_table[receiver.name])
            projections.append(
                _projection_between(
                    rng, control.name, control.num_signals, receiver.name,
                    port, port_size, quantised,
                )
            )
    # Feedback edges (cycles, possibly self-loops).
    if rng.random() < 0.45:
        sender = rng.choice(names)
        receiver = rng.choice(mechanisms)
        port, port_size = rng.choice(port_table[receiver.name])
        projections.append(
            _projection_between(
                rng, sender, sizes[sender], receiver.name, port, port_size, quantised
            )
        )

    # Conditions (pass-start-snapshot semantics apply; see DESIGN.md).
    for mech in mechanisms:
        if not mech.is_input and rng.random() < 0.45:
            mech.condition = _condition(rng, all_names, max_passes)
    if control is not None and rng.random() < 0.3:
        control.condition = _condition(rng, all_names, max_passes)

    # Designated outputs: at least one; bias toward sink nodes.
    output_pool = mechanisms[1:] or mechanisms
    for mech in output_pool:
        mech.is_output = rng.random() < 0.4
    if not any(m.is_output for m in mechanisms) and control is None:
        output_pool[-1].is_output = True

    # Termination.
    if rng.random() < 0.3:
        node = rng.choice(all_names)
        termination = ConditionSpec(
            "ThresholdCrossed",
            [
                node,
                _round(rng, 0.2, 3.0),
                rng.choice([">=", ">", "<=", "<"]),
                rng.choice(["max_abs", "max", "min"]),
            ],
        )
    else:
        termination = ConditionSpec("AfterNPasses", [max_passes])

    # External inputs: one or two rows over the input nodes' output sizes.
    input_width = sum(sizes[m.name] for m in mechanisms if m.is_input)
    rows = rng.randint(1, 2)
    inputs = [
        [float(rng.choice([rng.randint(-2, 2), _round(rng, -2.0, 2.0)])) for _ in range(input_width)]
        for _ in range(rows)
    ]

    return ModelSpec(
        name=f"fuzz_{seed}",
        seed=seed,
        mechanisms=mechanisms,
        projections=projections,
        termination=termination,
        max_passes=max_passes,
        control=control,
        inputs=inputs,
        num_trials=rng.randint(1, 3),
        run_seed=rng.randrange(0, 1 << 16),
    )


# ---------------------------------------------------------------------------
# Scaling workload (mega-models for the compile-time benchmarks)
# ---------------------------------------------------------------------------


def generate_scale_spec(
    seed: int,
    n_mechanisms: int = 200,
    width: int = 8,
    fan_in: int = 2,
    feedback_rate: float = 0.05,
    with_controls: int = 0,
    max_passes: int = 3,
) -> ModelSpec:
    """Generate a layered mega-model for compile-time scaling measurements.

    Where :func:`generate_model_spec` explores the *breadth* of the
    compilable subset with a handful of mechanisms, this generator explores
    its *depth*: ``n_mechanisms`` mechanisms arranged in layers of ``width``,
    each fed by up to ``fan_in`` upstream mechanisms, with ``feedback_rate``
    of the nodes also sending a back-edge (legal under the double-buffered
    pass semantics).  ``with_controls`` appends that many small grid-search
    controllers.  The same seed always yields the same spec, and the result
    is an ordinary :class:`ModelSpec` — ``to_source()``/``build()`` and the
    differential oracle work unchanged.

    Used by ``BENCH_fig7_scale`` (compile time vs mechanism count, and
    edit-recompile vs full-compile latency) and the CI compile-cost smoke
    job's edit-recompile leg.
    """
    if n_mechanisms < 2:
        raise ValueError("scale specs need at least 2 mechanisms")
    rng = random.Random(seed ^ 0x5CA1E5EED)
    width = max(1, int(width))

    #: Deterministic elementwise choices dominate so sanitize (one
    #: interpretive run of the whole model) stays cheap at depth.
    deterministic = ("linear", "logistic", "relu", "tanh")

    mechanisms: List[MechanismSpec] = []
    for i in range(n_mechanisms):
        is_input = i < width
        size = rng.randint(1, 3)
        if i % 7 == 3 and not is_input:
            name = rng.choice(("linear_combination", "energy"))
            kind = "objective"
        elif i % 23 == 11 and not is_input:
            name = "gaussian_noise"
            kind = "processing"
        else:
            name = rng.choice(deterministic)
            kind = "processing"
        params = _function_params(rng, name)
        mechanisms.append(
            MechanismSpec(
                name=f"n{i}",
                kind=kind,
                function=FunctionSpec(name, params),
                ports=[("input", size)],
                is_input=is_input,
                is_output=i >= n_mechanisms - width,
                monitor=rng.random() < 0.02,
            )
        )

    sizes = {m.name: _output_size(m) for m in mechanisms}
    names = [m.name for m in mechanisms]

    projections: List[ProjectionSpec] = []
    for i in range(width, n_mechanisms):
        mech = mechanisms[i]
        feeders = rng.sample(names[:i], min(fan_in, i, rng.randint(1, fan_in)))
        port, port_size = mech.ports[0]
        for sender in feeders:
            projections.append(
                _projection_between(
                    rng, sender, sizes[sender], mech.name, port, port_size, False
                )
            )
        if rng.random() < feedback_rate and i > width:
            target = mechanisms[rng.randrange(width, i)]
            t_port, t_size = target.ports[0]
            projections.append(
                _projection_between(
                    rng, mech.name, sizes[mech.name], target.name, t_port, t_size, False
                )
            )
        if rng.random() < 0.02:
            mech.condition = ConditionSpec(
                "EveryNPasses", [rng.randint(1, 2), 0]
            )

    control: Optional[ControlSpec] = None
    extra_controls: List[ControlSpec] = []
    for k in range(max(0, int(with_controls))):
        ctl = _control_spec(rng, n_mechanisms + k, rng.randint(1, 2))
        sender = rng.choice(names)
        projections.append(
            _projection_between(
                rng, sender, sizes[sender], ctl.name, "input", ctl.input_size, False
            )
        )
        if control is None:
            control = ctl
        else:
            extra_controls.append(ctl)
    if extra_controls:  # pragma: no cover - ModelSpec carries one control today
        raise ValueError("generate_scale_spec supports at most one control")

    input_width = sum(sizes[m.name] for m in mechanisms if m.is_input)
    inputs = [[_round(rng, -1.0, 1.0) for _ in range(input_width)]]

    return ModelSpec(
        name=f"scale_{seed}_{n_mechanisms}",
        seed=seed,
        mechanisms=mechanisms,
        projections=projections,
        termination=ConditionSpec("AfterNPasses", [max_passes]),
        max_passes=max_passes,
        control=control,
        inputs=inputs,
        num_trials=1,
        run_seed=rng.randrange(0, 1 << 16),
    )


# ---------------------------------------------------------------------------
# Edit perturbation (the incremental-recompile oracle leg)
# ---------------------------------------------------------------------------


def _scale_value(value: float) -> float:
    """A nearby-but-different float (never 0 -> nonzero or sign flips)."""
    return round(value * 1.25, 9)


def perturb_spec(spec: ModelSpec, seed: int):
    """A value-level edit of ``spec``: ``(edited_spec, changed_names)``.

    Picks one editable site — a mechanism's nonzero float parameter, a
    projection's matrix/scalar weight, a control step parameter or level
    row, or the termination threshold — and scales it by 1.25.  Edits never
    change shapes, structure or zero/nonzero-ness, so the edited model
    compiles under the same static layout and the incremental recompiler
    should take the patch path; the oracle's incremental leg asserts the
    patched artifact is bitwise-equal to a cold compile of the edit.

    Returns ``None`` when the spec offers no eligible edit site.
    ``changed_names`` is informational (the oracle exercises the structural
    diff, not explicit ``changed=`` sets).
    """
    import copy

    rng = random.Random(seed ^ 0x0ED17)
    edited = copy.deepcopy(spec)
    candidates = []

    for index, mech in enumerate(edited.mechanisms):
        for key, value in mech.function.params.items():
            if key == "non_negative":
                continue  # a baked branch selector, not a magnitude
            if isinstance(value, float) and value != 0.0:
                candidates.append(("mech-param", index, key))
            elif (
                key in ("weights", "matrix")
                and isinstance(value, list)
                and any(any(v) if isinstance(v, list) else bool(v) for v in value)
            ):
                candidates.append(("mech-list", index, key))
    for index, projection in enumerate(edited.projections):
        if isinstance(projection.matrix, float) and projection.matrix != 0.0:
            candidates.append(("proj-scalar", index, None))
        elif isinstance(projection.matrix, list) and any(
            v for row in projection.matrix for v in row
        ):
            candidates.append(("proj-matrix", index, None))
    if edited.control is not None:
        for s_index, step in enumerate(edited.control.steps):
            for key, value in step.function.params.items():
                if isinstance(value, float) and value != 0.0:
                    candidates.append(("step-param", s_index, key))
        for l_index, level in enumerate(edited.control.levels):
            if any(level):
                candidates.append(("ctl-level", l_index, None))
    if edited.termination.kind == "ThresholdCrossed":
        candidates.append(("termination", None, None))

    if not candidates:
        return None
    kind, index, key = rng.choice(candidates)

    if kind == "mech-param":
        mech = edited.mechanisms[index]
        mech.function.params[key] = _scale_value(mech.function.params[key])
        changed = {mech.name}
    elif kind == "mech-list":
        mech = edited.mechanisms[index]
        value = mech.function.params[key]
        if value and isinstance(value[0], list):
            mech.function.params[key] = [[_scale_value(v) for v in row] for row in value]
        else:
            mech.function.params[key] = [_scale_value(v) for v in value]
        changed = {mech.name}
    elif kind == "proj-scalar":
        projection = edited.projections[index]
        projection.matrix = _scale_value(projection.matrix)
        changed = {projection.receiver}
    elif kind == "proj-matrix":
        projection = edited.projections[index]
        projection.matrix = [
            [_scale_value(v) for v in row] for row in projection.matrix
        ]
        changed = {projection.receiver}
    elif kind == "step-param":
        step = edited.control.steps[index]
        step.function.params[key] = _scale_value(step.function.params[key])
        changed = {edited.control.name}
    elif kind == "ctl-level":
        edited.control.levels[index] = [
            _scale_value(v) for v in edited.control.levels[index]
        ]
        changed = {edited.control.name}
    else:  # termination threshold
        edited.termination.args[1] = _scale_value(edited.termination.args[1])
        changed = set()

    return edited, changed
