"""Reusable bitwise buffer comparators shared by the oracle and the autotuner.

These helpers started life inside :mod:`repro.fuzz.oracle` (PR 4).  The
pipeline autotuner (:mod:`repro.driver.autotune`) needs exactly the same
equivalence bar — bitwise-equal result/monitor/state buffers plus final PRNG
counters — so the comparators live here and both callers import them rather
than growing parallel implementations that could drift.

The contract is deliberately strict: *exact* elementwise equality with
``NaN == NaN`` (bitwise-for-floats), no tolerances.  Optimisation pipelines
must not change observable behaviour at all; anything looser would let a
miscompiling candidate win a race.  Engine-vs-engine comparisons with a
documented ulp tolerance (the lane leg's ``LANE_RTOL``) stay in
:mod:`repro.fuzz.oracle` — they compare *engines*, not *pipelines*.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "arrays_equal",
    "buffers_equal",
    "final_rng_counters",
    "proof_hash",
    "raw_buffers",
]


def raw_buffers(
    compiled, inputs, num_trials: int, seed: int, engine: str, **options
) -> Tuple[List[float], List[float], List[float]]:
    """Execute ``engine`` and return the raw (results, monitor, state) buffers."""
    buffers = compiled.allocate_buffers(inputs, num_trials, seed)
    compiled.engine_instance(engine).execute(buffers, num_trials, **options)
    return (
        list(buffers["results"]),
        list(buffers["monitor"]),
        list(buffers["state"]),
    )


def arrays_equal(a: Sequence[float], b: Sequence[float]) -> bool:
    """Exact elementwise equality with NaN == NaN (bitwise-for-floats)."""
    return np.array_equal(
        np.asarray(a, dtype=float), np.asarray(b, dtype=float), equal_nan=True
    )


def buffers_equal(a, b) -> Optional[str]:
    """``None`` when two raw buffer triples agree, else a short description."""
    for name, left, right in zip(("results", "monitor", "state"), a, b):
        if not arrays_equal(left, right):
            index = next(
                (
                    i
                    for i, (x, y) in enumerate(zip(left, right))
                    if x != y and not (math.isnan(x) and math.isnan(y))
                ),
                -1,
            )
            return (
                f"{name} buffers differ at slot {index}: "
                f"{left[index] if index >= 0 else '?'} vs "
                f"{right[index] if index >= 0 else '?'}"
            )
    return None


def final_rng_counters(compiled, state: Sequence[float]) -> Dict[str, int]:
    """Per-mechanism final PRNG counters read out of a finished state buffer."""
    return {
        name: int(state[offset + 1])
        for name, offset in compiled.layout.rng_offsets.items()
    }


def proof_hash(buffers, counters: Dict[str, int]) -> str:
    """Content hash of an observed (buffers, counters) observation.

    Recorded in autotune provenance: two candidates proven equivalent carry
    the *same* proof hash as the incumbent, so the equivalence claim in a
    persisted tuning record can be audited after the fact without re-running
    the race.
    """
    digest = hashlib.sha256()
    for part in buffers:
        digest.update(np.asarray(part, dtype=float).tobytes())
        digest.update(b"|")
    for name in sorted(counters):
        digest.update(f"{name}={counters[name]};".encode("utf-8"))
    return digest.hexdigest()
