"""The cross-engine differential oracle.

For one model the oracle runs a matrix of *legs* and demands agreement:

* **cold vs cached compile** — each pipeline is compiled twice, once with the
  analysis cache disabled (``flags={"analysis_cache": False}``) and once with
  it enabled; the printed IR of both compiles must be byte-identical.  Every
  campaign therefore doubles as a standing stale-analysis audit of the
  preserved-analyses contracts from PR 3.
* **engine conformance** — the cached artifact runs on every registered
  execution engine; the raw result, monitor and state buffers (the state
  buffer includes every mechanism's final PRNG ``(key, counter)``) must be
  bitwise identical to the ``compiled`` engine's buffers.  An engine raising
  where the baseline succeeded (or vice versa) is a divergence too.
* **pipeline conformance** — the ``compiled``-engine buffers must be bitwise
  identical across every pipeline in the matrix (O0 through O3 by default):
  optimisation must not change observable behaviour.
* **codegen conformance** — the first pipeline is recompiled with
  ``flags={"structured_codegen": False}`` (the legacy block-dispatch
  emitter) and its compiled-engine buffers must be bitwise identical to the
  structured emitter's: relooping, frame planning and constant pooling must
  never change observable behaviour.
* **reference conformance** — the interpretive :class:`ReferenceRunner` is
  the semantic baseline; compiled outputs and pass counts must match it to
  the suite-wide tolerance (``rtol=1e-9``, ``atol=1e-12``; engines share one
  IR module so only this leg is toleranced, everything else is bitwise).
* **lane conformance** (``--lane``) — a small ``run_batch`` (one lane per
  element, distinct seeds) on the vectorised lane engine must reproduce the
  scalar ``compiled`` engine's per-element buffers: bitwise, except for a
  documented ulp-level fallback (:data:`LANE_RTOL`) absorbing numpy-vs-libm
  transcendental rounding inside ``rng_normal``; PRNG counters stay bitwise.

Buffers are compared NaN-aware (two NaNs at the same slot agree): engines
must diverge from each other, not merely from IEEE comfort.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.distill import compile_composition
from ..driver.engines import engine_capabilities, list_engines
from .gen import ModelSpec

__all__ = [
    "DEFAULT_PIPELINES",
    "LANE_RTOL",
    "Divergence",
    "ModelVerdict",
    "OracleConfig",
    "check_spec",
    "check_composition",
    "raw_buffers",
    "buffers_equal",
]

#: One pipeline per paper optimisation level — the default oracle matrix.
DEFAULT_PIPELINES: Tuple[str, ...] = tuple(f"default<O{level}>" for level in range(4))

BASELINE_ENGINE = "compiled"


@dataclass
class Divergence:
    """One observed disagreement between oracle legs."""

    kind: str  # "analysis-cache" | "engine" | "engine-error" | "pipeline" | "reference" | "compile-error" | "codegen" | "sanitizer" | "lane"
    pipeline: str
    engine: Optional[str] = None
    detail: str = ""

    def describe(self) -> str:
        engine = f" engine={self.engine}" if self.engine else ""
        return f"[{self.kind}] pipeline={self.pipeline!r}{engine}: {self.detail}"


@dataclass
class ModelVerdict:
    """The oracle's verdict on one model."""

    model_name: str
    divergences: List[Divergence] = field(default_factory=list)
    legs: int = 0
    seconds: float = 0.0
    #: Final PRNG counters of the baseline leg, per mechanism (first pipeline).
    rng_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences


@dataclass
class OracleConfig:
    """What the oracle checks; the default covers the full acceptance matrix."""

    pipelines: Sequence[str] = DEFAULT_PIPELINES
    #: ``None`` = every engine in the driver registry.
    engines: Optional[Sequence[str]] = None
    workers: int = 2
    check_reference: bool = True
    check_analysis_cache: bool = True
    #: Recompile the first pipeline with ``flags={"structured_codegen":
    #: False}`` and demand bitwise-identical buffers: the legacy dispatch
    #: emitter is the conformance anchor for the structured relooper.
    check_codegen: bool = True
    #: Recompile the first pipeline with ``flags={"sanitize": True}`` and
    #: cross-validate the static safety suite (see :mod:`repro.lint`): a
    #: sanitizer trap on a model with no lint findings is an analysis false
    #: negative, and a trap-free instrumented run must reproduce the
    #: baseline buffers bitwise.  Off by default (the nightly campaign and
    #: ``python -m repro.fuzz --sanitizer`` enable it).
    check_sanitizer: bool = False
    #: Perturb one parameter/matrix/threshold of the spec
    #: (:func:`repro.fuzz.gen.perturb_spec`), apply the edit to a live model
    #: via :meth:`CompiledModel.recompile` and demand buffers bitwise equal
    #: to a *cold* full compile of the edited model on every engine — the
    #: incremental-recompilation differential contract.  Off by default (the
    #: nightly campaign and ``python -m repro.fuzz --incremental`` enable
    #: it); only runs for spec-driven checks (:func:`check_spec`).
    check_incremental: bool = False
    #: Execute a small ``run_batch`` (one lane per batch element, distinct
    #: seeds) on the lane engine and demand per-element result/monitor/state
    #: buffers equal to running the same elements on the scalar ``compiled``
    #: engine — bitwise, with the documented :data:`LANE_RTOL` fallback for
    #: float values (numpy's transcendental kernels, e.g. ``np.log`` inside
    #: ``rng_normal``, may differ from libm's in the final ulp); final
    #: per-mechanism PRNG counters must stay bitwise.  Off by default (the
    #: nightly campaign and ``python -m repro.fuzz --lane`` enable it).
    check_lane: bool = False

    def resolved_engines(self) -> List[str]:
        if self.engines is not None:
            return list(self.engines)
        # The lane engine is deliberately absent from the default (bitwise)
        # engine matrix: its ``rng_normal`` values may differ from the scalar
        # engines' in the final ulp (numpy vs libm transcendental kernels),
        # so it is checked by its own ``check_lane`` leg under the documented
        # :data:`LANE_RTOL` instead.  Passing ``engines=[..., "lane"]``
        # explicitly still opts it into the bitwise legs.
        return [name for name in list_engines() if name != "lane"]


# ---------------------------------------------------------------------------
# Raw execution and comparison helpers
# ---------------------------------------------------------------------------

# The bitwise comparators are shared with the pipeline autotuner (which
# demands the exact same equivalence bar before racing a candidate pipeline)
# and live in repro.fuzz.compare; the historical oracle names re-export them
# so existing callers and reproducer files keep working.
from .compare import buffers_equal, raw_buffers  # noqa: E402,F401
from .compare import arrays_equal as _arrays_equal  # noqa: E402,F401
from .compare import final_rng_counters as _final_rng_counters  # noqa: E402


def _engine_options(engine: str, workers: int) -> Dict[str, object]:
    capabilities = engine_capabilities().get(engine)
    if capabilities is not None and capabilities.supports_workers and workers:
        return {"workers": workers}
    return {}


# ---------------------------------------------------------------------------
# The sanitizer cross-validation leg
# ---------------------------------------------------------------------------


def _sanitizer_leg(
    build, inputs, num_trials, run_seed, pipeline_text, baseline, baseline_error,
    verdict,
) -> List[Divergence]:
    """Cross-validate the static safety suite against its runtime sanitizer.

    The leg recompiles the model with ``flags={"sanitize": True}`` and runs
    it.  Three outcomes:

    * a :class:`~repro.backends.runtime.SanitizerTrap` on a model the lint
      suite reports *clean* (no diagnostics at default severity) is a lint
      false negative — a divergence;
    * a trap on a model lint already flagged is the suite working as
      documented — no divergence;
    * no trap: the instrumented buffers must be bitwise identical to the
      uninstrumented baseline (instrumentation must never change behaviour).
    """
    from ..backends.runtime import SanitizerTrap
    from ..lint import run_lint
    from ..ir.diagnostics import at_or_above

    divergences: List[Divergence] = []
    verdict.legs += 1
    instrumented = None
    san_buffers = None
    san_trap: Optional[str] = None
    san_error: Optional[str] = None
    try:
        instrumented = compile_composition(
            build(), pipeline=pipeline_text, flags={"sanitize": True}
        )
        san_buffers = raw_buffers(
            instrumented, inputs, num_trials, run_seed, BASELINE_ENGINE
        )
    except SanitizerTrap as exc:
        san_trap = str(exc)
    except Exception as exc:  # noqa: BLE001 - the oracle reports, never raises
        san_error = f"{type(exc).__name__}: {exc}"
    finally:
        if instrumented is not None:
            instrumented.close_engines()

    if san_trap is not None:
        try:
            findings = at_or_above(run_lint(instrumented.module))
        except Exception as exc:  # noqa: BLE001
            findings = None
            divergences.append(
                Divergence(
                    "sanitizer", pipeline_text, None,
                    f"lint failed while triaging a trap: "
                    f"{type(exc).__name__}: {exc} (trap: {san_trap})",
                )
            )
        if findings is not None and not findings:
            divergences.append(
                Divergence(
                    "sanitizer", pipeline_text, None,
                    f"sanitizer trap on a statically clean model "
                    f"(lint false negative): {san_trap}",
                )
            )
        return divergences

    if (san_buffers is None) != (baseline is None):
        divergences.append(
            Divergence(
                "sanitizer", pipeline_text, None,
                f"instrumented vs plain compile: plain="
                f"{baseline_error or 'ok'} vs sanitize={san_error or 'ok'}",
            )
        )
    elif baseline is not None:
        mismatch = buffers_equal(baseline, san_buffers)
        if mismatch is not None:
            divergences.append(
                Divergence(
                    "sanitizer", pipeline_text, None,
                    f"instrumented buffers differ from baseline: {mismatch}",
                )
            )
    return divergences


# ---------------------------------------------------------------------------
# The batched-lane differential leg
# ---------------------------------------------------------------------------

#: Relative tolerance of the lane leg's *fallback* comparison.  The lane
#: engine evaluates ``rng_normal`` through numpy ufuncs whose transcendental
#: kernels (``np.log``) may differ from libm's (``math.log``) in the final
#: ulp, so normal draws — and any value computed from them — can sit a few
#: ulps away from the scalar engine's.  Bitwise equality is always tried
#: first; integers, uniforms and PRNG counters therefore stay exact, and the
#: tolerance only absorbs last-ulp transcendental rounding (DESIGN.md, "Lane
#: backend: tolerance policy").
LANE_RTOL = 1e-14

#: Batch elements (= lanes) the lane leg runs; each gets a distinct seed so
#: the comparison also covers per-lane PRNG key derivation.
LANE_LEG_BATCH = 3


def _lane_buffers_equal(a, b) -> Optional[str]:
    """Like :func:`buffers_equal` with the documented ulp fallback."""
    for name, left, right in zip(("results", "monitor", "state"), a, b):
        la = np.asarray(left, dtype=float)
        ra = np.asarray(right, dtype=float)
        if np.array_equal(la, ra, equal_nan=True):
            continue
        if np.allclose(la, ra, rtol=LANE_RTOL, atol=0.0, equal_nan=True):
            continue
        index = next(
            (
                i
                for i, (x, y) in enumerate(zip(left, right))
                if x != y and not (math.isnan(x) and math.isnan(y))
            ),
            -1,
        )
        return (
            f"{name} buffers differ at slot {index} beyond rtol={LANE_RTOL}: "
            f"{left[index] if index >= 0 else '?'} vs "
            f"{right[index] if index >= 0 else '?'}"
        )
    return None


def _lane_leg(
    cached, inputs, num_trials, run_seed, pipeline_text, verdict
) -> List[Divergence]:
    """The batched-lane differential: ``run_batch`` lane vs scalar compiled.

    Allocates :data:`LANE_LEG_BATCH` elements with consecutive seeds and
    executes them as one batch on both engines (every element is one lane of
    the lane engine's array program).  Per element, the raw result/monitor/
    state buffers must agree under :func:`_lane_buffers_equal` and the final
    per-mechanism PRNG counters must agree bitwise.  Error symmetry applies:
    both engines raising is agreement.
    """
    divergences: List[Divergence] = []
    verdict.legs += 1
    seeds = [run_seed + i for i in range(LANE_LEG_BATCH)]

    def batch_buffers(engine):
        elements = [
            (cached.allocate_buffers(inputs, num_trials, element_seed), num_trials)
            for element_seed in seeds
        ]
        cached.engine_instance(engine).execute_batch(elements)
        return [
            (list(buffers["results"]), list(buffers["monitor"]), list(buffers["state"]))
            for buffers, _ in elements
        ]

    baseline = lane = None
    baseline_error = lane_error = None
    try:
        baseline = batch_buffers(BASELINE_ENGINE)
    except Exception as exc:  # noqa: BLE001 - the oracle reports, never raises
        baseline_error = f"{type(exc).__name__}: {exc}"
    try:
        lane = batch_buffers("lane")
    except Exception as exc:  # noqa: BLE001
        lane_error = f"{type(exc).__name__}: {exc}"

    if (baseline is None) != (lane is None):
        divergences.append(
            Divergence(
                "lane", pipeline_text, "lane",
                f"run_batch: {BASELINE_ENGINE}={baseline_error or 'ok'} vs "
                f"lane={lane_error or 'ok'}",
            )
        )
        return divergences
    if baseline is None:
        return divergences  # both raised: agreement

    for element, (base, cand) in enumerate(zip(baseline, lane)):
        mismatch = _lane_buffers_equal(base, cand)
        base_counters = _final_rng_counters(cached, base[2])
        cand_counters = _final_rng_counters(cached, cand[2])
        if mismatch is None and base_counters != cand_counters:
            mismatch = "final PRNG counters differ"
        if mismatch is not None:
            divergences.append(
                Divergence(
                    "lane", pipeline_text, "lane",
                    f"batch element {element} (seed {seeds[element]}): {mismatch}"
                    f"; final PRNG counters {BASELINE_ENGINE}={base_counters} "
                    f"vs lane={cand_counters}",
                )
            )
    return divergences


# ---------------------------------------------------------------------------
# The oracle
# ---------------------------------------------------------------------------


def check_composition(
    build: Callable[[], object],
    inputs,
    num_trials: int,
    run_seed: int,
    config: Optional[OracleConfig] = None,
    model_name: str = "<model>",
) -> ModelVerdict:
    """Run the full differential matrix over one model.

    ``build`` must return a *fresh* composition per call (compiles mutate
    nothing, but the reference runner and sanitization both execute the
    model's stateful objects).
    """
    config = config or OracleConfig()
    verdict = ModelVerdict(model_name=model_name)
    started = time.perf_counter()
    engines = config.resolved_engines()

    first_pipeline: Optional[str] = None
    first_baseline: Optional[Tuple[List[float], List[float], List[float]]] = None
    first_error: Optional[str] = None
    reference_model = None

    for pipeline_text in config.pipelines:
        # -- compile legs: cached is the artifact under test, cold the audit --
        try:
            cached = compile_composition(build(), pipeline=pipeline_text)
        except Exception as exc:  # noqa: BLE001 - the oracle reports, never raises
            verdict.divergences.append(
                Divergence("compile-error", pipeline_text, None, f"{type(exc).__name__}: {exc}")
            )
            continue
        verdict.legs += 1
        if config.check_analysis_cache:
            try:
                cold = compile_composition(
                    build(), pipeline=pipeline_text, flags={"analysis_cache": False}
                )
                verdict.legs += 1
                if cold.print_ir() != cached.print_ir():
                    verdict.divergences.append(
                        Divergence(
                            "analysis-cache",
                            pipeline_text,
                            None,
                            "printed IR differs between cold and cached "
                            "analysis-manager compiles (stale analysis?)",
                        )
                    )
            except Exception as exc:  # noqa: BLE001
                verdict.divergences.append(
                    Divergence(
                        "analysis-cache", pipeline_text, None,
                        f"cold compile failed: {type(exc).__name__}: {exc}",
                    )
                )

        # -- engine legs ------------------------------------------------------
        try:
            baseline = raw_buffers(
                cached, inputs, num_trials, run_seed, BASELINE_ENGINE
            )
            baseline_error = None
        except Exception as exc:  # noqa: BLE001
            baseline = None
            baseline_error = f"{type(exc).__name__}: {exc}"
        verdict.legs += 1

        try:
            for engine in engines:
                if engine == BASELINE_ENGINE:
                    continue
                options = _engine_options(engine, config.workers)
                try:
                    candidate = raw_buffers(
                        cached, inputs, num_trials, run_seed, engine, **options
                    )
                    candidate_error = None
                except Exception as exc:  # noqa: BLE001
                    candidate = None
                    candidate_error = f"{type(exc).__name__}: {exc}"
                verdict.legs += 1

                if (candidate is None) != (baseline is None):
                    verdict.divergences.append(
                        Divergence(
                            "engine-error",
                            pipeline_text,
                            engine,
                            f"baseline={baseline_error or 'ok'} vs "
                            f"{engine}={candidate_error or 'ok'}",
                        )
                    )
                    continue
                if baseline is None:
                    continue  # both raised: agreement (e.g. all-NaN grids)
                mismatch = buffers_equal(baseline, candidate)
                if mismatch is not None:
                    counters = (
                        f"; final PRNG counters {BASELINE_ENGINE}="
                        f"{_final_rng_counters(cached, baseline[2])} vs "
                        f"{engine}={_final_rng_counters(cached, candidate[2])}"
                        if mismatch.startswith("state")
                        else ""
                    )
                    verdict.divergences.append(
                        Divergence("engine", pipeline_text, engine, mismatch + counters)
                    )

            # -- cross-pipeline leg -------------------------------------------
            # The first pipeline anchors the comparison whether its baseline
            # ran or raised: a pipeline whose compiled run raises while
            # another pipeline's succeeds is a divergence (optimisation must
            # not change observable behaviour, crashes included).
            if first_pipeline is None:
                first_pipeline = pipeline_text
                first_baseline = baseline
                first_error = baseline_error
                if baseline is not None:
                    verdict.rng_counters = _final_rng_counters(cached, baseline[2])
                    reference_model = cached
                if config.check_codegen:
                    leg_label = "structured vs dispatch codegen"
                    verdict.legs += 1
                    legacy = None
                    try:
                        legacy = compile_composition(
                            build(),
                            pipeline=pipeline_text,
                            flags={"structured_codegen": False},
                        )
                        legacy_buffers = raw_buffers(
                            legacy, inputs, num_trials, run_seed, BASELINE_ENGINE
                        )
                        legacy_error = None
                    except Exception as exc:  # noqa: BLE001
                        legacy_buffers = None
                        legacy_error = f"{type(exc).__name__}: {exc}"
                    finally:
                        if legacy is not None:
                            legacy.close_engines()
                    if (legacy_buffers is None) != (baseline is None):
                        verdict.divergences.append(
                            Divergence(
                                "codegen",
                                pipeline_text,
                                None,
                                f"{leg_label}: structured="
                                f"{baseline_error or 'ok'} vs dispatch="
                                f"{legacy_error or 'ok'}",
                            )
                        )
                    elif baseline is not None:
                        mismatch = buffers_equal(baseline, legacy_buffers)
                        if mismatch is not None:
                            verdict.divergences.append(
                                Divergence(
                                    "codegen", pipeline_text, None,
                                    f"{leg_label}: {mismatch}",
                                )
                            )
                if config.check_sanitizer:
                    verdict.divergences.extend(
                        _sanitizer_leg(
                            build, inputs, num_trials, run_seed,
                            pipeline_text, baseline, baseline_error, verdict,
                        )
                    )
                if config.check_lane:
                    verdict.divergences.extend(
                        _lane_leg(
                            cached, inputs, num_trials, run_seed,
                            pipeline_text, verdict,
                        )
                    )
            else:
                verdict.legs += 1
                if (baseline is None) != (first_baseline is None):
                    verdict.divergences.append(
                        Divergence(
                            "pipeline",
                            pipeline_text,
                            None,
                            f"vs {first_pipeline!r}: "
                            f"{first_pipeline}={first_error or 'ok'} vs "
                            f"{pipeline_text}={baseline_error or 'ok'}",
                        )
                    )
                elif baseline is not None:
                    mismatch = buffers_equal(first_baseline, baseline)
                    if mismatch is not None:
                        verdict.divergences.append(
                            Divergence(
                                "pipeline",
                                pipeline_text,
                                None,
                                f"vs {first_pipeline!r}: {mismatch}",
                            )
                        )
        finally:
            cached.close_engines()

    # -- reference leg ---------------------------------------------------------
    if config.check_reference and first_pipeline is not None:
        from ..cogframe.runner import ReferenceRunner

        verdict.legs += 1
        try:
            reference = ReferenceRunner(build(), seed=run_seed).run(
                inputs, num_trials=num_trials
            )
            reference_error: Optional[str] = None
        except Exception as exc:  # noqa: BLE001
            reference = None
            reference_error = f"{type(exc).__name__}: {exc}"

        if first_baseline is None:
            # Every compiled baseline raised; that only counts as agreement
            # if the semantic baseline fails this model as well.
            if reference_error is None:
                verdict.divergences.append(
                    Divergence(
                        "reference", first_pipeline, None,
                        f"compiled baseline raised ({first_error}) but the "
                        f"reference runner succeeded",
                    )
                )
        elif reference_error is not None:
            verdict.divergences.append(
                Divergence(
                    "reference", first_pipeline, None,
                    f"reference run failed: {reference_error}",
                )
            )
        else:
            compiled_results = reference_model._collect_results(
                {
                    "results": first_baseline[0],
                    "monitor": first_baseline[1],
                },
                num_trials,
                BASELINE_ENGINE,
            )
            detail = _compare_reference(reference, compiled_results)
            if detail is not None:
                verdict.divergences.append(
                    Divergence("reference", first_pipeline, None, detail)
                )

    verdict.seconds = time.perf_counter() - started
    return verdict


def _compare_reference(reference, compiled_results, rtol=1e-9, atol=1e-12) -> Optional[str]:
    """Compare reference-runner results to compiled results (toleranced)."""
    if len(reference.trials) != len(compiled_results.trials):
        return (
            f"trial counts differ: reference {len(reference.trials)} vs "
            f"compiled {len(compiled_results.trials)}"
        )
    for index, (ref, cand) in enumerate(zip(reference.trials, compiled_results.trials)):
        if ref.passes != cand.passes:
            return f"trial {index}: pass counts differ ({ref.passes} vs {cand.passes})"
        for node, value in ref.outputs.items():
            if not np.allclose(
                value, cand.outputs[node], rtol=rtol, atol=atol, equal_nan=True
            ):
                return (
                    f"trial {index}, node {node!r}: reference {value!r} vs "
                    f"compiled {cand.outputs[node]!r}"
                )
    return None


def _incremental_leg(spec: ModelSpec, config: OracleConfig, verdict: ModelVerdict) -> List[Divergence]:
    """The edit-recompile differential: patched-in-place vs cold full compile.

    Perturbs one value site of ``spec`` (never shapes/structure), compiles
    the *original* model, applies the edit through
    :meth:`CompiledModel.recompile` (structural-diff path — no explicit
    ``changed=`` hints), cold-compiles the edited spec, and requires the raw
    result/monitor/state buffers — final per-mechanism PRNG counters
    included — to be bitwise identical on every engine.  Error symmetry
    applies as in the engine legs: both paths raising is agreement.
    """
    from .gen import perturb_spec

    perturbed = perturb_spec(spec, spec.seed)
    if perturbed is None:
        return []
    edited_spec, changed = perturbed
    pipeline_text = config.pipelines[0]
    divergences: List[Divergence] = []
    verdict.legs += 1

    patched = cold = None
    patched_error = cold_error = None
    report: Dict[str, object] = {}
    try:
        try:
            patched = compile_composition(spec.build(), pipeline=pipeline_text)
            report = patched.recompile(composition=edited_spec.build())
        except Exception as exc:  # noqa: BLE001 - the oracle reports, never raises
            patched_error = f"{type(exc).__name__}: {exc}"
        try:
            cold = compile_composition(edited_spec.build(), pipeline=pipeline_text)
        except Exception as exc:  # noqa: BLE001
            cold_error = f"{type(exc).__name__}: {exc}"

        context = (
            f"(edit={sorted(changed)}, mode={report.get('mode', '?')}, "
            f"relowered={report.get('relowered', '?')})"
        )
        if (patched is None) != (cold is None):
            divergences.append(
                Divergence(
                    "incremental", pipeline_text, None,
                    f"patched={patched_error or 'ok'} vs cold="
                    f"{cold_error or 'ok'} {context}",
                )
            )
            return divergences
        if patched is None:
            return divergences  # both raised: agreement

        for engine in config.resolved_engines():
            options = _engine_options(engine, config.workers)
            verdict.legs += 1
            try:
                patched_buffers = raw_buffers(
                    patched, edited_spec.inputs, edited_spec.num_trials,
                    edited_spec.run_seed, engine, **options,
                )
                patched_run_error = None
            except Exception as exc:  # noqa: BLE001
                patched_buffers = None
                patched_run_error = f"{type(exc).__name__}: {exc}"
            try:
                cold_buffers = raw_buffers(
                    cold, edited_spec.inputs, edited_spec.num_trials,
                    edited_spec.run_seed, engine, **options,
                )
                cold_run_error = None
            except Exception as exc:  # noqa: BLE001
                cold_buffers = None
                cold_run_error = f"{type(exc).__name__}: {exc}"

            if (patched_buffers is None) != (cold_buffers is None):
                divergences.append(
                    Divergence(
                        "incremental", pipeline_text, engine,
                        f"patched={patched_run_error or 'ok'} vs cold="
                        f"{cold_run_error or 'ok'} {context}",
                    )
                )
                continue
            if patched_buffers is None:
                continue
            mismatch = buffers_equal(patched_buffers, cold_buffers)
            if mismatch is not None:
                counters = (
                    f"; final PRNG counters patched="
                    f"{_final_rng_counters(patched, patched_buffers[2])} vs cold="
                    f"{_final_rng_counters(cold, cold_buffers[2])}"
                    if mismatch.startswith("state")
                    else ""
                )
                divergences.append(
                    Divergence(
                        "incremental", pipeline_text, engine,
                        f"{mismatch}{counters} {context}",
                    )
                )
    finally:
        if patched is not None:
            patched.close_engines()
        if cold is not None:
            cold.close_engines()
    return divergences


def check_spec(spec: ModelSpec, config: Optional[OracleConfig] = None) -> ModelVerdict:
    """Run the oracle over a generated :class:`ModelSpec`."""
    config = config or OracleConfig()
    verdict = check_composition(
        spec.build,
        spec.inputs,
        spec.num_trials,
        spec.run_seed,
        config=config,
        model_name=spec.name,
    )
    if config.check_incremental and config.pipelines:
        started = time.perf_counter()
        verdict.divergences.extend(_incremental_leg(spec, config, verdict))
        verdict.seconds += time.perf_counter() - started
    return verdict
