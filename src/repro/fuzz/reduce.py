"""Delta-debugging reduction of failing fuzz models.

Given a failing :class:`ModelSpec` and a predicate "does this candidate still
fail the same way", the reducer greedily applies shrink transformations until
none helps:

* drop mechanisms (re-designating input/output nodes as needed) and the
  grid-search controller;
* drop projections;
* replace per-node conditions with ``Always`` and the termination with a
  plain ``AfterNPasses``;
* shrink the controller (drop signals, levels and non-objective steps);
* shrink the run configuration (passes, trials, input rows);
* ddmin over the failing pipeline's top-level entries, so a 17-pass O2
  sequence collapses to the one or two passes that actually matter.

Each candidate is validated by building + sanitizing the composition before
the (expensive) oracle predicate runs; invalid mutations are simply skipped.
The result is emitted as a self-contained pytest file whose body re-builds
the model from source (see :meth:`ModelSpec.to_source`), re-runs the failing
legs and asserts agreement — runnable with nothing but the repro package on
``PYTHONPATH``.  Self-containedness assumes the failing pipeline references
in-tree passes (the default campaign matrix does); a campaign run with an
injected experimental pass must keep that pass importable/registered when
replaying its reproducers.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterator, List, Optional, Sequence

from ..driver.pipeline import _split_top_level
from .gen import ConditionSpec, ModelSpec
from .oracle import Divergence

__all__ = ["shrink_spec", "shrink_pipeline", "reproducer_source"]


def _valid(spec: ModelSpec) -> bool:
    """Cheap structural validation: build + sanitize without compiling."""
    from ..cogframe.sanitize import sanitize

    try:
        sanitize(spec.build())
        return True
    except Exception:  # noqa: BLE001 - any failure just rejects the candidate
        return False


def _candidates(spec: ModelSpec) -> Iterator[ModelSpec]:
    """One-step shrink candidates, most aggressive first."""
    # Drop the controller entirely.
    if spec.control is not None:
        candidate = copy.deepcopy(spec)
        name = candidate.control.name
        candidate.control = None
        candidate.projections = [
            p for p in candidate.projections if name not in (p.sender, p.receiver)
        ]
        yield candidate

    # Drop one mechanism (plus its projections); keep >= 1 input node and
    # re-designate an output if the dropped node was the last one.
    if len(spec.mechanisms) > 1:
        for index in range(len(spec.mechanisms) - 1, -1, -1):
            candidate = copy.deepcopy(spec)
            dropped = candidate.mechanisms.pop(index)
            candidate.projections = [
                p
                for p in candidate.projections
                if dropped.name not in (p.sender, p.receiver)
            ]
            if not any(m.is_input for m in candidate.mechanisms):
                candidate.mechanisms[0].is_input = True
                candidate.mechanisms[0].ports = [("input", candidate.mechanisms[0].ports[0][1])]
            if not any(m.is_output for m in candidate.mechanisms) and (
                candidate.control is None or not candidate.control.is_output
            ):
                candidate.mechanisms[-1].is_output = True
            yield candidate

    # Drop one projection.
    for index in range(len(spec.projections) - 1, -1, -1):
        candidate = copy.deepcopy(spec)
        del candidate.projections[index]
        yield candidate

    # Simplify conditions.
    for index, mech in enumerate(spec.mechanisms):
        if mech.condition is not None:
            candidate = copy.deepcopy(spec)
            candidate.mechanisms[index].condition = None
            yield candidate
    if spec.control is not None and spec.control.condition is not None:
        candidate = copy.deepcopy(spec)
        candidate.control.condition = None
        yield candidate
    if spec.termination.kind != "AfterNPasses":
        candidate = copy.deepcopy(spec)
        candidate.termination = ConditionSpec("AfterNPasses", [candidate.max_passes])
        yield candidate

    # Shrink the controller: signals, levels, optional steps.
    if spec.control is not None:
        control = spec.control
        if control.num_signals > 1:
            candidate = copy.deepcopy(spec)
            candidate.control.levels.pop()
            yield candidate  # may invalidate sources/projections -> _valid() gates
        for signal, levels in enumerate(control.levels):
            if len(levels) > 1:
                candidate = copy.deepcopy(spec)
                candidate.control.levels[signal] = levels[:-1]
                yield candidate
        if len(control.steps) > 1:
            referenced = {
                source[1]
                for step in control.steps
                for source in step.sources
                if source[0] == "step"
            }
            for index, step in enumerate(control.steps):
                if step.name != control.objective_step and step.name not in referenced:
                    candidate = copy.deepcopy(spec)
                    del candidate.control.steps[index]
                    yield candidate

    # Shrink run configuration.
    if spec.max_passes > 1:
        candidate = copy.deepcopy(spec)
        candidate.max_passes = spec.max_passes - 1
        if candidate.termination.kind == "AfterNPasses":
            candidate.termination = ConditionSpec("AfterNPasses", [candidate.max_passes])
        yield candidate
    if spec.num_trials > 1:
        candidate = copy.deepcopy(spec)
        candidate.num_trials = 1
        yield candidate
    if len(spec.inputs) > 1:
        candidate = copy.deepcopy(spec)
        candidate.inputs = candidate.inputs[:1]
        yield candidate


def shrink_spec(
    spec: ModelSpec,
    still_fails: Callable[[ModelSpec], bool],
    max_checks: int = 200,
) -> ModelSpec:
    """Greedy fixpoint reduction of ``spec`` under the failure predicate.

    ``still_fails`` should re-run the oracle and report whether the candidate
    reproduces the *same kind* of divergence (checking the kind, not just
    "anything failed", avoids slipping onto an unrelated bug mid-shrink).
    ``max_checks`` bounds the total number of predicate evaluations so a
    pathological model cannot stall a campaign.
    """
    checks = 0
    current = spec
    progress = True
    while progress and checks < max_checks:
        progress = False
        for candidate in _candidates(current):
            if checks >= max_checks:
                break
            if not _valid(candidate):
                continue
            checks += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break
    return current


def shrink_pipeline(
    pipeline_text: str, still_fails: Callable[[str], bool], max_checks: int = 60
) -> str:
    """ddmin over the top-level entries of a textual pipeline description.

    Tries ever-smaller subsequences (preserving order) of the comma-separated
    top-level entries; returns the shortest text that still fails.  The empty
    pipeline (= O0, verification only) is a legal candidate.
    """
    entries = [e.strip() for e in _split_top_level(pipeline_text, "pipeline")]
    entries = [e for e in entries if e]
    checks = 0

    def attempt(candidate_entries: List[str]) -> Optional[str]:
        nonlocal checks
        if checks >= max_checks:
            return None
        candidate = ",".join(candidate_entries)
        checks += 1
        return candidate if still_fails(candidate) else None

    current = entries
    chunk = max(1, len(current) // 2)
    while len(current) > 0 and chunk >= 1:
        reduced = False
        start = 0
        while start < len(current):
            candidate_entries = current[:start] + current[start + chunk :]
            candidate = attempt(candidate_entries)
            if candidate is not None:
                current = candidate_entries
                reduced = True
            else:
                start += chunk
            if checks >= max_checks:
                break
        if checks >= max_checks:
            break
        if not reduced:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    return ",".join(current)


# ---------------------------------------------------------------------------
# Reproducer emission
# ---------------------------------------------------------------------------

_KIND_ASSERTIONS = {
    "engine": '''\
def {test_name}():
    compiled = compile_composition(build_model(), pipeline=PIPELINE)
    try:
        baseline = _raw(compiled, "compiled")
        candidate = _raw(compiled, {engine!r})
    finally:
        compiled.close_engines()
    _assert_buffers_equal(baseline, candidate, "compiled vs {engine}")
''',
    "engine-error": '''\
def {test_name}():
    compiled = compile_composition(build_model(), pipeline=PIPELINE)
    try:
        baseline = _raw(compiled, "compiled")
        candidate = _raw(compiled, {engine!r})
    finally:
        compiled.close_engines()
    _assert_buffers_equal(baseline, candidate, "compiled vs {engine}")
''',
    "pipeline": '''\
def {test_name}():
    first = compile_composition(build_model(), pipeline="{first_pipeline}")
    second = compile_composition(build_model(), pipeline=PIPELINE)
    try:
        baseline = _raw(first, "compiled")
        candidate = _raw(second, "compiled")
    finally:
        first.close_engines()
        second.close_engines()
    _assert_buffers_equal(
        baseline, candidate, "pipeline '{first_pipeline}' vs " + PIPELINE
    )
''',
    "analysis-cache": '''\
def {test_name}():
    cached = compile_composition(build_model(), pipeline=PIPELINE)
    cold = compile_composition(
        build_model(), pipeline=PIPELINE, flags={{"analysis_cache": False}}
    )
    assert cold.print_ir() == cached.print_ir(), (
        "cold vs cached analysis-manager compiles produced different IR"
    )
''',
    "reference": '''\
def {test_name}():
    from repro.cogframe.runner import ReferenceRunner

    reference = ReferenceRunner(build_model(), seed=RUN_SEED).run(
        INPUTS, num_trials=NUM_TRIALS
    )
    compiled = compile_composition(build_model(), pipeline=PIPELINE)
    try:
        result = compiled.run(INPUTS, num_trials=NUM_TRIALS, seed=RUN_SEED)
    finally:
        compiled.close_engines()
    assert [t.passes for t in reference.trials] == [t.passes for t in result.trials]
    for index, (ref, cand) in enumerate(zip(reference.trials, result.trials)):
        for node, value in ref.outputs.items():
            np.testing.assert_allclose(
                cand.outputs[node], value, rtol=1e-9, atol=1e-12,
                err_msg=f"trial {{index}}, node {{node}}",
            )
''',
}

_HELPERS = '''\
def _raw(compiled, engine):
    """Execute one engine; returns the raw (results, monitor, state) buffers."""
    buffers = compiled.allocate_buffers(INPUTS, NUM_TRIALS, RUN_SEED)
    options = {"workers": 2} if engine == "mcpu" else {}
    compiled.engine_instance(engine).execute(buffers, NUM_TRIALS, **options)
    return (
        list(buffers["results"]),
        list(buffers["monitor"]),
        list(buffers["state"]),
    )


def _assert_buffers_equal(a, b, label):
    for name, left, right in zip(("results", "monitor", "state"), a, b):
        assert np.array_equal(
            np.asarray(left), np.asarray(right), equal_nan=True
        ), f"{label}: {name} buffers differ\\n  baseline:  {left}\\n  candidate: {right}"
'''


def reproducer_source(
    spec: ModelSpec,
    divergence: Divergence,
    xfail_reason: Optional[str] = None,
    baseline_pipeline: str = "default<O0>",
) -> str:
    """A self-contained pytest module reproducing ``divergence`` on ``spec``.

    With ``xfail_reason`` the test is emitted under
    ``@pytest.mark.xfail(strict=True)`` — the form in which still-open
    findings are committed to the suite (strictness makes the eventual fix
    flip the test loudly).
    """
    template = _KIND_ASSERTIONS.get(divergence.kind)
    if template is None:
        template = _KIND_ASSERTIONS["engine"]
    test_name = f"test_fuzz_seed_{spec.seed}_{divergence.kind.replace('-', '_')}"
    body = template.format(
        test_name=test_name,
        engine=divergence.engine or "ir-interp",
        first_pipeline=baseline_pipeline,
    )
    decorator = ""
    if xfail_reason is not None:
        decorator = (
            f'@pytest.mark.xfail(strict=True, reason={xfail_reason!r})\n'
        )
        body = decorator + body
    header = (
        f'"""Fuzz reproducer: seed {spec.seed}, {divergence.describe()}\n\n'
        f"Auto-generated by repro.fuzz; replay the campaign with\n"
        f"    python -m repro.fuzz --seed {spec.seed} --n-models 1\n"
        f'"""\n\n'
        "import numpy as np\n"
        "import pytest\n\n"
        "from repro.core.distill import compile_composition\n\n"
    )
    model_source = spec.to_source()
    # Strip the generated module docstring; the reproducer has its own.
    if model_source.startswith('"""'):
        model_source = model_source.split('"""', 2)[2].lstrip("\n")
    pipeline_line = f"PIPELINE = {divergence.pipeline!r}\n\n"
    return (
        header
        + model_source
        + "\n\n"
        + pipeline_line
        + "\n"
        + _HELPERS
        + "\n\n"
        + body
    )
