"""repro.fuzz — the generative conformance harness.

Csmith-style differential fuzzing for the whole compiler stack: a seeded
random model generator (:mod:`repro.fuzz.gen`) draws mechanisms, functions,
projection topologies (cycles included) and scheduling conditions from the
same registries the curated models use; a differential oracle
(:mod:`repro.fuzz.oracle`) compiles every generated model at O0–O3 with cold
and cached analysis managers and demands bitwise-identical buffers — outputs,
monitor records and final PRNG counters — across every registered execution
engine, plus tolerance-checked agreement with the interpretive reference
runner; and a delta-debugging reducer (:mod:`repro.fuzz.reduce`) shrinks any
failure to a minimal model + pipeline and emits a self-contained pytest
reproducer.

Drive a campaign from code::

    import repro.fuzz
    report = repro.fuzz.run_campaign(seed=0, n_models=25)
    assert report.ok, report.format_table()

or from the command line::

    python -m repro.fuzz --seed 0 --n-models 25 --out-dir fuzz-reproducers

See DESIGN.md, "Generative conformance", for the generator grammar, the
oracle legs and the shrinking strategy.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from . import oracle
from .gen import ModelSpec, generate_model_spec
from .oracle import (
    DEFAULT_PIPELINES,
    Divergence,
    ModelVerdict,
    OracleConfig,
    check_composition,
    check_spec,
)
from .reduce import reproducer_source, shrink_pipeline, shrink_spec

__all__ = [
    "CampaignReport",
    "FailureRecord",
    "ModelSpec",
    "ModelVerdict",
    "Divergence",
    "OracleConfig",
    "DEFAULT_PIPELINES",
    "generate_model_spec",
    "check_spec",
    "check_composition",
    "shrink_spec",
    "shrink_pipeline",
    "reproducer_source",
    "run_campaign",
]


@dataclass
class FailureRecord:
    """One failing model: the original verdict plus the shrunk reproducer."""

    seed: int
    divergences: List[Divergence]
    shrunk: Optional[ModelSpec] = None
    reproducer_path: Optional[str] = None

    def describe(self) -> str:
        lines = [f"seed {self.seed}:"]
        lines += [f"  {d.describe()}" for d in self.divergences]
        if self.shrunk is not None:
            summary = self.shrunk.summary()
            lines.append(
                f"  shrunk to {summary['mechanisms']} mechanisms, "
                f"{summary['projections']} projections"
            )
        if self.reproducer_path:
            lines.append(f"  reproducer: {self.reproducer_path}")
        return "\n".join(lines)


@dataclass
class CampaignReport:
    """Structured result of one fuzz campaign."""

    seed: int
    n_models: int
    rows: List[Dict[str, object]] = field(default_factory=list)
    failures: List[FailureRecord] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    legs: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "models": self.n_models,
            "failures": len(self.failures),
            "legs": self.legs,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }

    def format_table(self) -> str:
        """Human-readable campaign report (bench-harness table style)."""
        from ..bench.harness import FigureReport

        report = FigureReport(
            figure="fuzz",
            title=(
                f"conformance campaign: seeds {self.seed}..{self.seed + self.n_models - 1}"
            ),
        )
        for row in self.rows:
            report.add(**row)
        report.note(
            f"{self.n_models} models, {self.legs} oracle legs, "
            f"{len(self.failures)} failing, {self.elapsed_seconds:.2f}s total"
        )
        for failure in self.failures:
            report.note(failure.describe())
        return report.format_table()


def _narrowed_config(config: OracleConfig, divergence: Divergence) -> OracleConfig:
    """An :class:`OracleConfig` reduced to the legs ``divergence`` needs.

    Keeps the campaign's first pipeline as the comparison anchor (the
    reproducer file asserts against it) plus the failing pipeline, and only
    the baseline engine plus the diverging one; reference and cold-compile
    legs run only for their own divergence kinds.
    """
    pipelines = [config.pipelines[0]]
    if divergence.pipeline not in pipelines:
        pipelines.append(divergence.pipeline)
    engines = [oracle.BASELINE_ENGINE]
    if divergence.engine and divergence.engine not in engines:
        engines.append(divergence.engine)
    return OracleConfig(
        pipelines=tuple(pipelines),
        engines=tuple(engines),
        workers=config.workers,
        check_reference=divergence.kind == "reference",
        check_analysis_cache=divergence.kind == "analysis-cache",
        check_sanitizer=divergence.kind == "sanitizer",
        check_incremental=divergence.kind == "incremental",
        check_lane=divergence.kind == "lane",
    )


def run_campaign(
    seed: int = 0,
    n_models: int = 25,
    pipelines: Sequence[str] = DEFAULT_PIPELINES,
    engines: Optional[Sequence[str]] = None,
    workers: int = 2,
    check_reference: bool = True,
    check_sanitizer: bool = False,
    check_incremental: bool = False,
    check_lane: bool = False,
    shrink: bool = True,
    out_dir: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignReport:
    """Generate and differentially check ``n_models`` models.

    Models use seeds ``seed .. seed + n_models - 1``, so any campaign —
    nightly CI runs included — is replayable model-by-model.  For each
    failure the spec is shrunk to a minimal reproducer (unless ``shrink`` is
    False) and, when ``out_dir`` is given, written there as a self-contained
    pytest file.  Returns a :class:`CampaignReport`; never raises on model
    divergence (the report carries the failures).
    """
    config = OracleConfig(
        pipelines=tuple(pipelines),
        engines=engines,
        workers=workers,
        check_reference=check_reference,
        check_sanitizer=check_sanitizer,
        check_incremental=check_incremental,
        check_lane=check_lane,
    )
    report = CampaignReport(seed=seed, n_models=n_models)
    started = time.perf_counter()

    for model_seed in range(seed, seed + n_models):
        spec = generate_model_spec(model_seed)
        verdict = check_spec(spec, config)
        report.legs += verdict.legs
        summary = spec.summary()
        report.rows.append(
            {
                "seed": model_seed,
                "mechanisms": summary["mechanisms"],
                "projections": summary["projections"],
                "grid": summary["grid"],
                "passes": summary["max_passes"],
                "legs": verdict.legs,
                "status": "ok" if verdict.ok else verdict.divergences[0].kind,
                "seconds": round(verdict.seconds, 3),
            }
        )
        if progress is not None:
            progress(
                f"seed {model_seed}: "
                + ("ok" if verdict.ok else verdict.divergences[0].describe())
                + f" ({verdict.seconds:.2f}s, {verdict.legs} legs)"
            )
        if verdict.ok:
            continue

        failure = FailureRecord(seed=model_seed, divergences=verdict.divergences)
        primary = verdict.divergences[0]
        if shrink:
            kind = primary.kind
            # Shrinking re-runs the oracle per candidate; restrict it to the
            # legs the recorded divergence actually needs (one pipeline pair,
            # one engine pair) instead of the full matrix — an order of
            # magnitude cheaper per candidate, and no mcpu pool spin-ups
            # unless mcpu is the diverging engine.
            shrink_config = _narrowed_config(config, primary)

            def still_fails(candidate: ModelSpec) -> bool:
                candidate_verdict = check_spec(candidate, shrink_config)
                return any(d.kind == kind for d in candidate_verdict.divergences)

            failure.shrunk = shrink_spec(spec, still_fails)
            # Re-check the shrunk spec so the recorded divergence (pipeline,
            # engine) matches what the reproducer file will assert on.
            shrunk_verdict = check_spec(failure.shrunk, shrink_config)
            matching = [d for d in shrunk_verdict.divergences if d.kind == kind]
            if matching:
                primary = matching[0]
        if out_dir is not None:
            os.makedirs(out_dir, exist_ok=True)
            path = os.path.join(out_dir, f"test_repro_seed_{model_seed}.py")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(
                    reproducer_source(
                        failure.shrunk or spec,
                        primary,
                        baseline_pipeline=config.pipelines[0],
                    )
                )
            failure.reproducer_path = path
        report.failures.append(failure)

    report.elapsed_seconds = time.perf_counter() - started
    return report
