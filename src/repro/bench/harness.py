"""Benchmark harness: regenerate every table and figure of the evaluation.

Each ``figureN_report`` function reproduces one figure of the paper's
evaluation section and returns a :class:`FigureReport` whose rows mirror the
series plotted in the paper.  Absolute times differ from the paper's (this
reproduction executes compiled *Python*, not native code, on a container
instead of the paper's i7-8700 + GTX 1060), so every report also records the
paper's reference numbers where applicable; EXPERIMENTS.md discusses the
comparison.  The ``benchmarks/`` directory wraps these reports in
pytest-benchmark entry points.

All reports compile through one shared :class:`repro.Session`
(:data:`SESSION`), so a model that several figures rebuild (e.g. the medium
predator-prey variant) is compiled once per pipeline and reused — see
DESIGN.md, "Sessions and caching".
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..analysis import CloneDetector, Interval, MeshRefiner
from ..cogframe import ReferenceRunner
from ..cogframe.functions import DriftDiffusionIntegrator, LeakyCompetingIntegrator
from ..core.distill import CompiledModel, compile_composition
from ..core.specialize import emit_library_function, specialize_on_buffer
from ..backends.gpu_sim import GpuOccupancyModel
from ..models import FIGURE4_MODELS, get_model, predator_prey_variant
from ..models import predator_prey as pp_model
from ..driver.session import Session


#: Shared compilation session: structurally identical models rebuilt by
#: different figures hit the artifact cache instead of recompiling.
SESSION = Session()


@dataclass
class FigureReport:
    """Rows regenerating one figure/table of the paper."""

    figure: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, **kwargs) -> None:
        self.rows.append(kwargs)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def format_table(self) -> str:
        if not self.rows:
            return f"{self.figure}: {self.title}\n  (no rows)"
        columns = list(self.rows[0].keys())
        widths = {
            c: max(len(str(c)), *(len(_fmt(row.get(c))) for row in self.rows)) for c in columns
        }
        lines = [f"{self.figure}: {self.title}"]
        lines.append("  " + " | ".join(str(c).ljust(widths[c]) for c in columns))
        lines.append("  " + "-+-".join("-" * widths[c] for c in columns))
        for row in self.rows:
            lines.append(
                "  " + " | ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns)
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def _time_call(fn: Callable[[], object], repeats: int = 1) -> float:
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ---------------------------------------------------------------------------
# Figure 4 — running time of the model suite across engines
# ---------------------------------------------------------------------------

#: Paper speedups of CPython-DISTILL over CPython, eyeballed from Figure 4's
#: log-scale bars; used only for the paper-vs-measured comparison column.
PAPER_FIG4_SPEEDUPS = {
    "vectorized_necker_cube": 10.0,
    "necker_cube_s": 10.0,
    "necker_cube_m": 20.0,
    "predator_prey_s": 15.0,
    "botvinick_stroop": 778.0,
    "extended_stroop_a": 100.0,
    "extended_stroop_b": 100.0,
    "multitasking": 20.0,
}


def figure4_report(
    models: Optional[Sequence[str]] = None,
    trials_scale: float = 1.0,
    engines: Sequence[str] = ("reference", "ir-interp", "per-node", "compiled"),
) -> FigureReport:
    """Normalised running times of the model suite (paper Figure 4).

    Engine mapping (see DESIGN.md): ``reference`` = CPython/PsyNeuLink,
    ``ir-interp`` = generic JIT stand-in (PyPy/Pyston), ``per-node`` =
    CPython-DISTILL-per-node, ``compiled`` = CPython-DISTILL.
    """
    report = FigureReport("Figure 4", "Model suite running time, normalised to the reference runner")
    speedups = []
    for name in models or FIGURE4_MODELS:
        entry = get_model(name)
        composition = entry.build()
        inputs = entry.inputs()
        trials = max(int(entry.num_trials * trials_scale), 1)

        timings: Dict[str, float] = {}
        if "reference" in engines:
            runner = ReferenceRunner(entry.build(), seed=0)
            timings["reference"] = _time_call(lambda: runner.run(inputs, num_trials=trials))
        compiled = SESSION.compile_model(composition)
        for engine in engines:
            if engine == "reference":
                continue
            timings[engine] = _time_call(
                lambda e=engine: compiled.run(inputs, num_trials=trials, seed=0, engine=e)
            )
        base = timings.get("reference", 1.0)
        speedup = base / timings["compiled"] if "compiled" in timings else float("nan")
        speedups.append(speedup)
        report.add(
            model=name,
            trials=trials,
            **{f"{k}_s": v for k, v in timings.items()},
            **{f"norm_{k}": (v / base) for k, v in timings.items() if k != "reference"},
            distill_speedup=speedup,
            paper_speedup=PAPER_FIG4_SPEEDUPS.get(name, float("nan")),
        )
    report.add(
        model="average",
        trials="-",
        distill_speedup=float(np.mean(speedups)),
        paper_speedup=26.0,
    )
    report.note(
        "PyPy/Pyston cannot be installed offline; the IR interpreter plays the "
        "generic-JIT role and, like PyPy in the paper, is slower than the baseline."
    )
    report.note(
        "The paper's Multitasking model cannot run under PyPy/Pyston at all; here "
        "every engine runs it because the minitorch network is lowered to the same IR."
    )
    return report


# ---------------------------------------------------------------------------
# Figure 5a — predator-prey scaling
# ---------------------------------------------------------------------------


def figure5a_report(
    variants: Sequence[str] = ("s", "m", "l"),
    include_xl: bool = True,
    xl_levels: int = 100,
    baseline_level_cap: int = 6,
) -> FigureReport:
    """Predator-prey scaling S/M/L/XL (paper Figure 5a).

    The reference runner is only measured up to ``baseline_level_cap`` levels
    per entity (the paper's CPython run of XL did not finish in 24 hours);
    its XL time is extrapolated from the measured cost per evaluation.
    """
    report = FigureReport("Figure 5a", "Predator-prey scaling: reference vs Distill")
    inputs = pp_model.default_inputs(1)
    per_eval_seconds = None
    for variant in variants:
        levels = pp_model.VARIANT_LEVELS[variant]
        entry = predator_prey_variant(variant)
        composition = entry.build()
        evaluations = levels ** 3 * composition.max_passes
        reference_time = float("nan")
        if levels <= baseline_level_cap:
            runner = ReferenceRunner(entry.build(), seed=0)
            reference_time = _time_call(lambda: runner.run(inputs, num_trials=1))
            per_eval_seconds = reference_time / evaluations
        compiled = SESSION.compile_model(composition)
        compiled_time = _time_call(
            lambda: compiled.run(inputs, num_trials=1, seed=0, engine="compiled")
        )
        speedup = (
            (reference_time / compiled_time)
            if reference_time == reference_time
            else float("nan")
        )
        report.add(
            variant=variant.upper(),
            levels_per_entity=levels,
            evaluations=evaluations,
            reference_s=reference_time,
            distill_s=compiled_time,
            speedup=speedup,
            regression=bool(speedup < 1.0),
        )
    if include_xl:
        levels = xl_levels
        composition = pp_model.build_predator_prey(levels_per_entity=levels)
        evaluations = levels ** 3 * composition.max_passes
        estimated_reference = (
            per_eval_seconds * evaluations if per_eval_seconds is not None else float("nan")
        )
        compiled = SESSION.compile_model(composition)
        compiled_time = _time_call(
            lambda: compiled.run(inputs, num_trials=1, seed=0, engine="gpu-sim")
        )
        serial_time = float("nan")
        if levels <= 40:
            serial_time = _time_call(
                lambda: compiled.run(inputs, num_trials=1, seed=0, engine="compiled")
            )
        xl_speedup = (
            (estimated_reference / compiled_time)
            if estimated_reference == estimated_reference
            else float("nan")
        )
        report.add(
            variant="XL",
            levels_per_entity=levels,
            evaluations=evaluations,
            reference_s=estimated_reference,
            distill_s=serial_time if serial_time == serial_time else compiled_time,
            speedup=xl_speedup,
            regression=bool(xl_speedup < 1.0),
        )
        report.note(
            "XL reference time is extrapolated from the measured per-evaluation cost "
            "(the paper's CPython XL run did not finish within 24 hours either)."
        )
    regressed = [row["variant"] for row in report.rows if row.get("regression")]
    if regressed:
        winners = [
            row["variant"]
            for row in report.rows
            if not row.get("regression") and row["speedup"] == row["speedup"]
        ]
        report.note(
            f"compilation overhead dominates the smallest grids: {', '.join(regressed)} "
            f"run slower compiled than interpreted (speedup < 1), and the crossover "
            f"sits between {regressed[-1]} and {winners[0] if winners else '?'} — "
            "distill wins as the evaluation count grows, not uniformly."
        )
    return report


# ---------------------------------------------------------------------------
# Figure 5b — per-node vs whole-model compilation
# ---------------------------------------------------------------------------


def figure5b_report(cycles: int = 100, trials: int = 20) -> FigureReport:
    """Botvinick Stroop: per-node vs whole-model compilation (Figure 5b)."""
    from ..models import stroop

    report = FigureReport("Figure 5b", "Botvinick Stroop: importance of model-wide optimisation")
    inputs = stroop.default_inputs("incongruent")
    build = lambda: stroop.build_botvinick_stroop(cycles=cycles)  # noqa: E731

    runner = ReferenceRunner(build(), seed=0)
    reference = _time_call(lambda: runner.run(inputs, num_trials=trials))
    compiled = SESSION.compile_model(build())
    per_node = _time_call(
        lambda: compiled.run(inputs, num_trials=trials, seed=0, engine="per-node")
    )
    whole = _time_call(
        lambda: compiled.run(inputs, num_trials=trials, seed=0, engine="compiled")
    )
    for label, seconds, paper_speedup in (
        ("reference (CPython)", reference, 1.0),
        ("Distill per-node", per_node, 3.4),
        ("Distill whole-model", whole, 778.0),
    ):
        report.add(
            configuration=label,
            seconds=seconds,
            normalised=seconds / reference,
            speedup=reference / seconds,
            paper_speedup=paper_speedup,
        )
    return report


# ---------------------------------------------------------------------------
# Figure 5b (lanes) — batched execution: scalar compiled vs the lane engine
# ---------------------------------------------------------------------------

#: Workload table for :func:`figure5b_lane_report`.  Each entry is
#: ``(name, build, inputs, lanes, trials, gate)``; ``gate=True`` rows are the
#: loop-heavy grid-search workloads the CI speedup floor is asserted over,
#: the rest are context (settling-style models vectorise less profitably).
def _fig5b_lane_workloads(quick: bool):
    from ..models import necker

    pp_inputs = pp_model.default_inputs(1)
    if quick:
        return [
            ("predator_prey_m", lambda: pp_model.build_predator_prey("m"), pp_inputs, 1024, 2, True),
            ("predator_prey_l", lambda: pp_model.build_predator_prey("l"), pp_inputs, 512, 2, True),
        ]
    return [
        ("predator_prey_m", lambda: pp_model.build_predator_prey("m"), pp_inputs, 1024, 2, True),
        ("predator_prey_l", lambda: pp_model.build_predator_prey("l"), pp_inputs, 1024, 2, True),
        ("predator_prey_l", lambda: pp_model.build_predator_prey("l"), pp_inputs, 8, 2, False),
        ("necker_cube_s", necker.build_necker_cube_s, necker.default_inputs(3), 1024, 2, False),
    ]


def figure5b_lane_report(quick: bool = False) -> FigureReport:
    """Batched ``run_batch``: scalar compiled vs the vectorised lane engine.

    A repro-only extension of Figure 5: every batch element becomes one SIMT
    lane of a numpy array program (see DESIGN.md, "Lane backend"), so the
    speedup over the scalar compiled engine grows with the batch size.  The
    8-lane predator-prey row documents the other side of the crossover — at
    small batches the masked whole-batch sweeps cost more than they save, and
    the row is flagged ``regression`` exactly like Figure 5a's S variant.
    """
    report = FigureReport(
        "Figure 5b (lanes)",
        "Batched grid-search execution: scalar compiled vs the lane engine",
    )
    for name, build, inputs, lanes, trials, gate in _fig5b_lane_workloads(quick):
        compiled = SESSION.compile_model(build())
        scalar = compiled.engine_instance("compiled")
        lane = compiled.engine_instance("lane")
        batch = [inputs] * lanes
        seeds = list(range(lanes))
        # Warm both engines (lane codegen is lazy; timing measures execution).
        scalar.run_batch(batch[:2], num_trials=trials, seed=seeds[:2])
        lane.run_batch(batch[:2], num_trials=trials, seed=seeds[:2])
        scalar_s = _time_call(
            lambda: scalar.run_batch(batch, num_trials=trials, seed=seeds)
        )
        lane_s = _time_call(
            lambda: lane.run_batch(batch, num_trials=trials, seed=seeds)
        )
        speedup = scalar_s / lane_s
        report.add(
            workload=name,
            lanes=lanes,
            trials=trials,
            compiled_s=scalar_s,
            lane_s=lane_s,
            speedup=speedup,
            lane_fallbacks=len(lane.lane_fallbacks),
            gate=gate,
            regression=bool(speedup < 1.0),
        )
    report.note(
        "Lanes are batch elements: the lane engine stacks every element's "
        "buffers into (n_lanes, slots) arrays and runs the masked array "
        "program once; rows with gate=true carry the CI speedup floor."
    )
    regressed = [
        f"{row['workload']}@{row['lanes']}" for row in report.rows if row["regression"]
    ]
    if regressed:
        report.note(
            f"regression rows ({', '.join(regressed)}): below the batch-size "
            "crossover the masked sweeps cost more than the per-element loop."
        )
    return report


# ---------------------------------------------------------------------------
# Figure 5c — parallel / GPU execution of Predator-Prey XL
# ---------------------------------------------------------------------------


def figure5c_report(
    levels_per_entity: int = 20, workers: int = 2, batch_size: int = 2
) -> FigureReport:
    """Serial vs multicore vs (simulated) GPU execution of the grid search.

    The mCPU rows run on a *persistent* engine instance: the worker pool is
    built once and reused across every timed ``run()``/``run_batch()`` call
    (``pool_starts`` proves it — it stays at 1 however many rows are timed).
    The first mCPU row therefore pays pool start-up; the warm row and the
    batched row show the amortised cost.
    """
    report = FigureReport(
        "Figure 5c", f"Predator-Prey parallel execution ({levels_per_entity}^3 evaluations/pass)"
    )
    composition = pp_model.build_predator_prey(levels_per_entity=levels_per_entity)
    inputs = pp_model.default_inputs(1)
    compiled = SESSION.compile_model(composition)

    serial = _time_call(lambda: compiled.run(inputs, num_trials=1, seed=0, engine="compiled"))

    # The worker pool is released in the ``finally`` below: an exception in
    # any timed row must not leak idle worker processes into the caller.
    mcpu_instance = compiled.engine_instance("mcpu")
    mcpu_timings = 0
    try:
        mcpu_cold = _time_call(
            lambda: mcpu_instance.run(inputs, num_trials=1, seed=0, workers=workers)
        )
        mcpu_warm = _time_call(
            lambda: mcpu_instance.run(inputs, num_trials=1, seed=0, workers=workers)
        )
        batch = [inputs] * max(batch_size, 1)
        mcpu_batch = (
            _time_call(
                lambda: mcpu_instance.run_batch(
                    batch, num_trials=1, seed=0, workers=workers
                )
            )
            / len(batch)
        )
        mcpu_timings = 3
        pool_starts = mcpu_instance.pool_starts
    finally:
        # Release the worker pool: the report is a one-shot measurement and
        # must not leave idle worker processes behind in the caller.
        mcpu_instance.close()

    gpu = _time_call(lambda: compiled.run(inputs, num_trials=1, seed=0, engine="gpu-sim"))
    for label, seconds, paper_seconds, paper_speedup in (
        ("Distill serial", serial, 4.4, 1.0),
        (f"Distill mCPU cold ({workers} workers)", mcpu_cold, 0.9, 4.9),
        (f"Distill mCPU warm ({workers} workers)", mcpu_warm, 0.9, 4.9),
        (f"Distill mCPU batched x{len(batch)} ({workers} workers)", mcpu_batch, 0.9, 4.9),
        ("Distill GPU (SIMT simulator)", gpu, 0.7, 6.3),
    ):
        report.add(
            configuration=label,
            seconds=seconds,
            speedup_vs_serial=serial / seconds,
            paper_seconds=paper_seconds,
            paper_speedup=paper_speedup,
            pool_starts=pool_starts if "mCPU" in label else "-",
        )
    report.note(
        "The host has 2 cores (paper: 6C/12T) and no GPU (paper: GTX 1060); the mCPU "
        "speedup is bounded by the core count and the GPU row uses the data-parallel "
        "SIMT simulator, so magnitudes differ while the ordering is preserved."
    )
    report.note(
        f"pool_starts={pool_starts} after {mcpu_timings} mCPU timings: the persistent "
        "engine instance reused one worker pool for every run()/run_batch() call "
        "(no per-call Pool construction); the batched row divides one run_batch of "
        f"{len(batch)} elements by the batch size."
    )
    return report


# ---------------------------------------------------------------------------
# Figure 6 — GPU register throttling / occupancy study
# ---------------------------------------------------------------------------


def figure6_report(grid_size: int = 1_000_000) -> FigureReport:
    """Occupancy and runtime under register caps (paper Figure 6)."""
    report = FigureReport("Figure 6", "GPU register throttling (analytical occupancy model)")
    composition = pp_model.build_predator_prey("m")
    compiled = SESSION.compile_model(composition)
    info = compiled.grid_searches[0]
    model = GpuOccupancyModel(
        private_bytes_per_thread=18_500.0,
        measured_reference_seconds=0.7,
    )
    for point in model.register_sweep(grid_size=grid_size):
        report.add(
            precision=point.precision,
            max_registers=point.max_registers,
            occupancy=point.occupancy,
            estimated_seconds=point.estimated_seconds,
            spill_bytes_per_thread=point.spill_bytes_per_thread,
        )
    report.note(
        "No GPU is available; the sweep uses the documented analytical occupancy/"
        "latency model anchored at the paper's 0.7 s reference point.  The model "
        "reproduces the paper's two observations: occupancy rises as the register "
        "cap shrinks while runtime worsens, and fp32 is barely faster than fp64 "
        "because the kernel is bound by the ~18.5 kB of replicated per-thread state "
        f"(compiled kernel private bytes: {info.private_bytes_per_eval})."
    )
    return report


# ---------------------------------------------------------------------------
# Figure 7 — compilation cost breakdown
# ---------------------------------------------------------------------------


def figure7_report(trials: int = 4) -> FigureReport:
    """Run-time breakdown across optimisation levels (paper Figure 7)."""
    from ..models import multitasking as mt

    report = FigureReport("Figure 7", "Compilation and run-time breakdown at O0–O3")
    cases = [
        ("Predator-Prey L", lambda: pp_model.build_predator_prey("l"), pp_model.default_inputs(1), 1),
        ("Multitasking", lambda: mt.build_multitasking(max_cycles=120), mt.default_inputs(4), trials),
    ]
    baseline = None
    for label, build, inputs, num_trials in cases:
        for opt_level in (0, 1, 2, 3):
            # Figure 7 measures compilation cost itself, so it must bypass the
            # session cache: a memoized model would replay stale stats.
            compiled = compile_composition(build(), pipeline=f"default<O{opt_level}>")
            result = compiled.run(inputs, num_trials=num_trials, seed=0, engine="compiled")
            total = (
                result.breakdown["input_construction"]
                + result.breakdown["execution"]
                + result.breakdown["output_extraction"]
                + compiled.stats.total_seconds
            )
            if baseline is None:
                baseline = total
            agg = compiled.pipeline.aggregate_timings()
            report.add(
                model=label,
                opt_level=f"O{opt_level}",
                compilation_s=compiled.stats.total_seconds,
                input_construction_s=result.breakdown["input_construction"],
                execution_s=result.breakdown["execution"],
                output_extraction_s=result.breakdown["output_extraction"],
                total_s=total,
                relative_to_first=total / baseline,
                ir_instructions=compiled.stats.instructions_after,
                analysis_hits=compiled.stats.analysis_hits,
                analysis_misses=compiled.stats.analysis_misses,
                artifact_hits=compiled.stats.artifact_hits,
                artifact_misses=compiled.stats.artifact_misses,
                pass_runs_changed=sum(row["changed"] for row in agg.values()),
                pass_runs_noop=sum(row["noops"] for row in agg.values()),
                noop_passes=",".join(
                    sorted(n for n, row in agg.items() if row["changed"] == 0)
                )
                or "-",
            )
    report.note(
        "As in the paper, compilation cost is visible but amortised: it is paid once "
        "while models are run for hundreds to thousands of trials afterwards."
    )
    report.note(
        "analysis_hits/misses are the per-compile AnalysisManager counters: hits are "
        "dominator trees / loop info / predecessor maps served from cache instead of "
        "rebuilt per pass (see figure7_cache_report for the cold-path comparison)."
    )
    report.note(
        "pass_runs_changed/noop count per-pass invocations that did / did not modify "
        "the IR; noop_passes lists passes that never changed it — the autotuner's "
        "first pruning candidates (see figure10_autotune_report)."
    )
    return report


def figure7_cache_report(repeats: int = 3) -> FigureReport:
    """Cold vs cached compilation: the analysis-manager contribution.

    The "cold" rows compile with ``flags={"analysis_cache": False}`` — every
    pass recomputes its own dominator trees / loop info, the pre-manager
    behaviour — while the "cached" rows use the default per-compile
    :class:`~repro.analysis.manager.AnalysisManager`.  ``optimize_s`` is the
    phase the cache affects (best of ``repeats``); sanitize/codegen/lowering
    are identical in both configurations.
    """
    from ..models import multitasking as mt

    report = FigureReport(
        "Figure 7 (cache)", "O2 compile cost: cold vs cached analysis manager"
    )
    cases = [
        ("Predator-Prey M", lambda: pp_model.build_predator_prey("m")),
        ("Multitasking", lambda: mt.build_multitasking(max_cycles=120)),
    ]
    for label, build in cases:
        measured = {}
        for mode, flags in (("cold", {"analysis_cache": False}), ("cached", None)):
            best_opt = float("inf")
            best_total = float("inf")
            compiled = None
            for _ in range(max(repeats, 1)):
                start = time.perf_counter()
                compiled = compile_composition(build(), pipeline="default<O2>", flags=flags)
                best_total = min(best_total, time.perf_counter() - start)
                best_opt = min(best_opt, compiled.stats.optimize_seconds)
            measured[mode] = best_opt
            report.add(
                model=label,
                mode=mode,
                optimize_s=best_opt,
                compile_s=best_total,
                analysis_hits=compiled.stats.analysis_hits,
                analysis_misses=compiled.stats.analysis_misses,
                skipped_passes=compiled.stats.analysis_skipped_passes,
                domtree_builds=compiled.analysis_stats["computed"].get("domtree", 0),
            )
        report.add(
            model=label,
            mode="speedup",
            optimize_s=measured["cold"] / measured["cached"],
            compile_s="-",
            analysis_hits="-",
            analysis_misses="-",
            skipped_passes="-",
            domtree_builds="-",
        )
    report.note(
        "Cached compiles build each function's dominator tree at most twice per O2 "
        "pipeline (cold build + one post-simplifycfg rebuild round, pinned by "
        "tests/test_analysis_manager.py); the cold path rebuilds it for every "
        "consuming pass."
    )
    return report


def _scale_edit_specs(spec):
    """Two deterministic single-edit copies of ``spec`` for recompile rows.

    Returns ``((param_edit, mechanism_name), (projection_edit, receiver_name))``.
    The param edit scales one mechanism function parameter — those load from
    the params buffer, so ``recompile`` resolves it without re-lowering any
    function ("params-only").  The projection edit scales one non-zero matrix,
    which is baked into the receiver's node function, forcing the per-unit
    re-lower + live-patch path ("patched").
    """
    import copy

    param_edit = copy.deepcopy(spec)
    param_target = None
    for mech in param_edit.mechanisms:
        if mech.is_input:
            continue
        for key, value in mech.function.params.items():
            if key != "non_negative" and isinstance(value, float) and value:
                mech.function.params[key] = round(value * 1.25, 9)
                param_target = mech.name
                break
        if param_target:
            break

    proj_edit = copy.deepcopy(spec)
    proj_target = None
    for projection in proj_edit.projections:
        if isinstance(projection.matrix, list) and any(
            v for row in projection.matrix for v in row
        ):
            projection.matrix = [
                [round(v * 1.25, 9) for v in row] for row in projection.matrix
            ]
            proj_target = projection.receiver
            break
    if param_target is None or proj_target is None:
        raise ValueError("spec offers no editable parameter/projection site")
    return (param_edit, param_target), (proj_edit, proj_target)


def figure7_scale_report(
    sizes: Sequence[int] = (50, 100, 200, 500),
    edit_point: int = 200,
    pipeline: str = "default<O2>",
    spec_seed: int = 7,
) -> FigureReport:
    """Compile cost vs mechanism count, and edit-recompile vs full compile.

    A repro-only extension of Figure 7: the scaling-workload generator
    (:func:`repro.fuzz.gen.generate_scale_spec`) builds layered mega-models
    of ``sizes`` mechanisms, each cold-compiled with the artifact store
    disabled so the rows measure the real distill→optimize→codegen cost.  At
    ``edit_point`` mechanisms two single-value edits are then pushed through
    ``CompiledModel.recompile``: a buffer-loaded parameter (resolved without
    re-lowering) and a baked projection matrix (re-lowers only the receiver's
    compile unit).  ``recompile_pct`` is the headline number: the cost of an
    edit relative to the cold full compile of the same model.
    """
    from ..fuzz.gen import generate_scale_spec

    report = FigureReport(
        "Figure 7 (scale)",
        "Compile cost vs mechanism count; edit-recompile vs full compile",
    )
    for n in sizes:
        spec = generate_scale_spec(spec_seed, n_mechanisms=n)
        composition = spec.build()
        n_projections = len(composition.projections)
        started = time.perf_counter()
        compiled = compile_composition(composition, pipeline=pipeline, store=False)
        full_seconds = time.perf_counter() - started
        stats = compiled.stats
        report.add(
            mechanisms=n,
            projections=n_projections,
            mode="full",
            seconds=full_seconds,
            pct_of_full=1.0,
            relowered=len(list(compiled.module.defined_functions())),
            sanitize_s=stats.sanitize_seconds,
            optimize_s=stats.optimize_seconds,
            lower_s=stats.lower_seconds,
            ir_instructions=stats.instructions_after,
        )
        if n != edit_point:
            compiled.close_engines()
            continue
        for label, (edited, _target) in zip(
            ("edit/params-only", "edit/patched"), _scale_edit_specs(spec)
        ):
            started = time.perf_counter()
            patch_report = compiled.recompile(
                composition=edited.build(), store=False
            )
            seconds = time.perf_counter() - started
            report.add(
                mechanisms=n,
                projections=n_projections,
                mode=label,
                seconds=seconds,
                pct_of_full=seconds / full_seconds,
                relowered=len(patch_report.get("relowered") or ()),
                sanitize_s="-",
                optimize_s="-",
                lower_s="-",
                ir_instructions=compiled.stats.instructions_after,
            )
            assert patch_report["mode"] in ("params-only", "patched"), patch_report
        compiled.close_engines()
    report.note(
        "Edits re-lower only the compile units whose structural fingerprint "
        "changed; a buffer-loaded parameter edit re-lowers none.  Cold compiles "
        "run with the artifact store disabled (store=False) so the scaling rows "
        "are cache-independent; warm-store behaviour is asserted separately by "
        "benchmarks/bench_fig7_scale.py."
    )
    return report


# ---------------------------------------------------------------------------
# Figure 2 — adaptive mesh refinement vs grid search
# ---------------------------------------------------------------------------


def empirical_attention_curve(
    compiled: CompiledModel,
    inputs: Dict[str, np.ndarray],
    levels: Sequence[float],
    samples_per_level: int = 200,
    fixed_allocation: Sequence[float] = (0.0, 0.0),
) -> List[Dict[str, float]]:
    """Average evaluation cost as a function of the prey attention level.

    This is the "grid" series of Figure 2: the model's evaluation kernel is
    executed ``samples_per_level`` times for every candidate level (using the
    data-parallel executor, i.e. exactly what running the model would do),
    and the mean cost per level is reported.
    """
    from ..backends.gpu_sim import VectorizedKernelExecutor

    info = compiled.grid_searches[0]
    kernel = compiled.module.get_function(info.kernel_name)
    executor = VectorizedKernelExecutor(kernel)
    flat_input = (
        list(inputs["player_loc"]) + list(inputs["predator_loc"]) + list(inputs["prey_loc"])
    )
    rows = []
    for level_index, level in enumerate(levels):
        lanes = samples_per_level
        lane_args = {
            1 + info.input_size + len(info.levels) + 1: (
                np.arange(lanes, dtype=np.float64) * info.counter_stride
                + level_index * lanes * info.counter_stride
            )
        }
        scalar_args: List[object] = [(compiled.layout.param_values, 0)]
        scalar_args += [float(v) for v in flat_input]
        scalar_args += [float(fixed_allocation[0]), float(fixed_allocation[1]), float(level)]
        scalar_args += [12345.0, 0.0]  # fixed PRNG key; per-lane counters above
        costs = executor(scalar_args, lane_args, lanes)
        rows.append({"attention": float(level), "mean_cost": float(np.mean(costs))})
    return rows


def figure2_report(grid_levels: int = 100, samples_per_level: int = 1000) -> FigureReport:
    """Mesh refinement over the prey-attention parameter (paper Figure 2)."""
    report = FigureReport(
        "Figure 2", "Finding the best prey attention: compiler analysis vs grid search"
    )
    composition = pp_model.build_predator_prey("m")
    compiled = SESSION.compile_model(composition)
    info = compiled.grid_searches[0]
    kernel = compiled.module.get_function(info.kernel_name)
    specialised = specialize_on_buffer(kernel, 0, compiled.layout.param_values)

    inputs = pp_model.default_inputs(1)[0]
    point_ranges = {}
    flat = list(inputs["player_loc"]) + list(inputs["predator_loc"]) + list(inputs["prey_loc"])
    for i, value in enumerate(flat):
        point_ranges[f"in{i}"] = Interval.point(float(value))
    point_ranges["alloc0"] = Interval.point(2.5)
    point_ranges["alloc1"] = Interval.point(2.5)
    point_ranges["rng_key"] = Interval(0.0, 2.0 ** 31)
    point_ranges["rng_counter"] = Interval(0.0, 2.0 ** 40)

    refiner = MeshRefiner(
        specialised,
        parameter="alloc2",
        objective="min",
        arg_ranges=point_ranges,
        assume_normal_range=3.0,
    )
    result = refiner.refine(0.0, 5.0, tolerance=0.05)

    # The "grid" series: the empirical mean-cost curve over sampled levels.
    curve_levels = list(np.linspace(0.0, 5.0, 26))
    curve = empirical_attention_curve(
        compiled,
        inputs,
        curve_levels,
        samples_per_level=max(samples_per_level // 5, 50),
        fixed_allocation=(2.5, 2.5),
    )
    empirical_best = min(curve, key=lambda row: row["mean_cost"])

    grid_runs = grid_levels * samples_per_level
    report.add(
        method="adaptive mesh refinement (VRP)",
        model_executions=0,
        analysis_rounds=result.rounds,
        vrp_runs=result.vrp_runs,
        estimated_optimum=result.estimate,
        interval=f"[{result.final_interval.lo:.3f}, {result.final_interval.hi:.3f}]",
    )
    report.add(
        method=f"sampled grid ({grid_levels} levels x {samples_per_level} samples)",
        model_executions=grid_runs,
        analysis_rounds="-",
        vrp_runs=0,
        estimated_optimum=f"{empirical_best['attention']:.3f} "
        f"(mean cost {empirical_best['mean_cost']:.3f})",
        interval="-",
    )
    report.note(
        "The paper reports ~7 refinement rounds versus hundreds of thousands of model "
        "runs for the sampled grid; the measured rounds are listed above."
    )
    for step in result.history:
        report.add(
            method=f"  round {step.round_index}",
            model_executions=0,
            analysis_rounds=step.round_index,
            vrp_runs=2,
            estimated_optimum=f"chose {step.chosen}",
            interval=f"[{(step.left if step.chosen == 'left' else step.right).lo:.3f}, "
            f"{(step.left if step.chosen == 'left' else step.right).hi:.3f}]",
        )
    return report


# ---------------------------------------------------------------------------
# Figure 3 — DDM / LCA clone detection
# ---------------------------------------------------------------------------


def figure3_report() -> FigureReport:
    """Clone detection between the LCA and DDM accumulation kernels (Figure 3)."""
    report = FigureReport("Figure 3", "DDM vs LCA accumulation kernels under parameter bindings")
    from ..ir import Module

    module = Module("figure3")
    lca = emit_library_function(
        LeakyCompetingIntegrator(noise=1.0, time_step=0.01, non_negative=0.0),
        input_size=1,
        module=module,
        name="lca_step",
        param_args=("leak", "competition", "offset"),
    )
    ddm = emit_library_function(
        DriftDiffusionIntegrator(noise=1.0, time_step=0.01),
        input_size=1,
        module=module,
        name="ddm_step",
        param_args=("rate",),
    )
    detector = CloneDetector()
    unbound = detector.compare(lca, ddm)
    bound = detector.compare(
        lca,
        ddm,
        left_bindings={"leak": 0.0, "competition": 0.0, "offset": 0.0},
        right_bindings={"rate": 1.0},
    )
    report.add(
        comparison="LCA vs DDM (no bindings)",
        equivalent=unbound.equivalent,
        detail=unbound.reason,
    )
    report.add(
        comparison="LCA(rate=0, offset=0) vs DDM(rate=1)",
        equivalent=bound.equivalent,
        detail=bound.reason,
        matched_instructions=bound.matched_instructions,
    )
    report.note(
        "The paper's Figure 3 highlights the identical accumulation core; with the "
        "same bindings the structural comparator reports equivalence, so the LCA "
        "node can be replaced by the DDM's analytical solution."
    )
    return report


# ---------------------------------------------------------------------------
# Figure 8 — codegen shape: dispatch-loop vs structured emission
# ---------------------------------------------------------------------------

#: The registered models whose run time is dominated by reconstructed loops
#: (grid searches, settling passes with per-pass PRNG draws) — the workloads
#: the structured emitter targets.  The acceptance bar (structured >= 1.3x
#: dispatch) is asserted over these; the remaining suite models appear in the
#: report as context rows.
FIG8_LOOP_HEAVY_MODELS = (
    "predator_prey_s",
    "vectorized_necker_cube",
    "necker_cube_m",
)

FIG8_CONTEXT_MODELS = ("botvinick_stroop", "multitasking")


def figure8_report(
    models: Optional[Sequence[str]] = None,
    trials_scale: float = 1.0,
    repeats: int = 5,
) -> FigureReport:
    """Codegen shape: dispatch-loop vs structured emission (repro-only figure).

    Every model is compiled twice — the default structured emitter and the
    legacy block-dispatch ladder (``flags={"structured_codegen": False}``) —
    and the raw ``run_model`` execution of both artifacts is timed (buffer
    allocation and result extraction excluded: they are engine-independent).
    Compiles bypass the shared session deliberately: the two flag values
    would be distinct cache keys anyway, and the rows also record per-config
    lowering cost.
    """
    report = FigureReport(
        "Figure 8", "Codegen shape: dispatch-loop vs structured emission"
    )
    chosen = list(models) if models is not None else list(
        FIG8_LOOP_HEAVY_MODELS + FIG8_CONTEXT_MODELS
    )
    loop_heavy_speedups = []
    for name in chosen:
        entry = get_model(name)
        inputs = entry.inputs()
        trials = max(int(entry.num_trials * 3 * trials_scale), 1)

        structured = compile_composition(entry.build(), pipeline="default<O2>")
        dispatch = compile_composition(
            entry.build(), pipeline="default<O2>", flags={"structured_codegen": False}
        )
        try:

            def run_once(model):
                buffers = model.allocate_buffers(inputs, trials, 0)
                model._run_whole_compiled(buffers, trials)

            structured_s = _time_call(lambda: run_once(structured), repeats)
            dispatch_s = _time_call(lambda: run_once(dispatch), repeats)
        finally:
            structured.close_engines()
            dispatch.close_engines()
        speedup = dispatch_s / structured_s
        loop_heavy = name in FIG8_LOOP_HEAVY_MODELS
        if loop_heavy:
            loop_heavy_speedups.append(speedup)
        fallbacks = structured.stats.dispatch_fallbacks
        report.add(
            model=name,
            trials=trials,
            loop_heavy=loop_heavy,
            dispatch_s=dispatch_s,
            structured_s=structured_s,
            speedup=speedup,
            structured_lower_s=structured.stats.lower_seconds,
            dispatch_lower_s=dispatch.stats.lower_seconds,
            relooper_bails=len(fallbacks),
        )
        for fn_name in fallbacks:
            reason = structured.stats.dispatch_fallback_reasons.get(fn_name, "?")
            report.note(
                f"{name}: @{fn_name} fell back to the dispatch emitter: {reason}"
            )
    if loop_heavy_speedups:
        report.add(
            model="loop-heavy mean",
            trials="-",
            loop_heavy=True,
            dispatch_s="-",
            structured_s="-",
            speedup=float(np.mean(loop_heavy_speedups)),
            structured_lower_s="-",
            dispatch_lower_s="-",
            relooper_bails="-",
        )
    report.note(
        "Structured emission replaces the `_block` dispatch ladder with native "
        "while/if/else, folds constant GEP chains, coalesces allocas into one "
        "frame buffer, pools constants/intrinsic bindings into closure cells "
        "and inlines the counter-based PRNG; the dispatch rows rerun the same "
        "IR through the legacy emitter."
    )
    return report


# ---------------------------------------------------------------------------
# Figure 9 — serving daemon: cold compile vs warm session vs coalesced load
# ---------------------------------------------------------------------------

#: Workloads for :func:`figure9_serving_report`.  ``gate=True`` rows carry the
#: CI floor (served-warm p50 must beat the cold per-request compile by the
#: asserted factor); both suite models here are compile-dominated at one
#: trial, which is exactly the shape the warm daemon amortises.
FIG9_WORKLOADS = (
    ("necker_cube_s", 1, True),
    ("botvinick_stroop", 1, True),
)


def _percentile_ms(latencies: Sequence[float], q: float) -> float:
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
    return ordered[index] * 1000.0


def figure9_serving_report(
    quick: bool = False,
    load_clients: int = 4,
    coalesce_window_ms: float = 2.0,
) -> FigureReport:
    """Serving daemon: cold per-request compile vs warm daemon vs coalesced load.

    A repro-only extension of the evaluation: three ways to answer the same
    stream of run requests.  ``cold`` pays a fresh ``compile_composition``
    per request (the per-process baseline the daemon replaces — measured
    in-process, i.e. *without* interpreter start-up, which only flatters the
    baseline); ``served-warm`` sends sequential requests to a daemon whose
    session already holds the compiled model; ``served-coalesced`` drives the
    daemon with ``load_clients`` concurrent threads so same-key requests
    coalesce into shared ``run_batch`` dispatches (a small linger window
    makes the batching deterministic enough to benchmark).  Correctness of
    the coalesced path is pinned bitwise by tests/test_serve.py; this report
    only measures it.
    """
    import tempfile
    import threading

    from ..serve import ServeClient, ServeConfig, Server, wait_for_server

    cold_repeats = 2 if quick else 3
    warm_requests = 12 if quick else 40
    load_requests = 5 if quick else 12  # per client

    report = FigureReport(
        "Figure 9", "Serving daemon: cold compile vs warm session vs coalesced load"
    )
    tmp = tempfile.mkdtemp(prefix="repro-serve-bench-")
    sock = os.path.join(tmp, "bench.sock")
    server = Server(
        sock,
        artifact_dir=False,
        config=ServeConfig(
            max_queue=256,
            max_coalesce=64,
            coalesce_window=coalesce_window_ms / 1000.0,
        ),
    )
    server.start()
    try:
        wait_for_server(sock)
        for name, trials, gate in FIG9_WORKLOADS:
            entry = get_model(name)
            inputs = entry.inputs()

            cold = []
            for repeat in range(cold_repeats):
                start = time.perf_counter()
                compiled = compile_composition(
                    entry.build(), pipeline="default<O2>", store=False
                )
                compiled.run(inputs, num_trials=trials, seed=repeat, engine="compiled")
                cold.append(time.perf_counter() - start)
                compiled.close_engines()
            cold_p50 = _percentile_ms(cold, 0.5)
            report.add(
                workload=name,
                mode="cold",
                requests=len(cold),
                clients=1,
                p50_ms=cold_p50,
                p99_ms=_percentile_ms(cold, 0.99),
                req_per_s=len(cold) / sum(cold),
                coalesce_rate=0.0,
                speedup_vs_cold=1.0,
                gate=gate,
            )

            with ServeClient(sock, timeout=600.0) as client:
                client.run(name, inputs, num_trials=trials, seed=0)  # warm the session
                warm = []
                warm_started = time.perf_counter()
                for seed in range(warm_requests):
                    start = time.perf_counter()
                    client.run(name, inputs, num_trials=trials, seed=seed)
                    warm.append(time.perf_counter() - start)
                warm_elapsed = time.perf_counter() - warm_started
            warm_p50 = _percentile_ms(warm, 0.5)
            report.add(
                workload=name,
                mode="served-warm",
                requests=warm_requests,
                clients=1,
                p50_ms=warm_p50,
                p99_ms=_percentile_ms(warm, 0.99),
                req_per_s=warm_requests / warm_elapsed,
                coalesce_rate=0.0,
                speedup_vs_cold=cold_p50 / warm_p50,
                gate=gate,
            )

            before = server.stats()
            latencies_lock = threading.Lock()
            load_latencies: List[float] = []
            errors: List[BaseException] = []

            def load_client(worker: int):
                try:
                    with ServeClient(sock, timeout=600.0) as client:
                        for request in range(load_requests):
                            start = time.perf_counter()
                            client.run(
                                name,
                                inputs,
                                num_trials=trials,
                                seed=worker * load_requests + request,
                            )
                            elapsed = time.perf_counter() - start
                            with latencies_lock:
                                load_latencies.append(elapsed)
                except BaseException as exc:  # surfaced after join
                    errors.append(exc)

            threads = [
                threading.Thread(target=load_client, args=(worker,))
                for worker in range(load_clients)
            ]
            load_started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            load_elapsed = time.perf_counter() - load_started
            if errors:
                raise errors[0]
            after = server.stats()
            completed = (
                after["requests"]["completed"] - before["requests"]["completed"]
            )
            coalesced = (
                after["coalesce"]["coalesced_requests"]
                - before["coalesce"]["coalesced_requests"]
            )
            load_p50 = _percentile_ms(load_latencies, 0.5)
            report.add(
                workload=name,
                mode="served-coalesced",
                requests=len(load_latencies),
                clients=load_clients,
                p50_ms=load_p50,
                p99_ms=_percentile_ms(load_latencies, 0.99),
                req_per_s=len(load_latencies) / load_elapsed,
                coalesce_rate=(coalesced / completed) if completed else 0.0,
                speedup_vs_cold=cold_p50 / load_p50,
                gate=gate,
            )
    finally:
        server.shutdown(drain=False)
    report.note(
        "cold = fresh compile_composition + run per request (store disabled), the "
        "per-process baseline minus interpreter start-up; served rows include the "
        "full socket round trip against one warm daemon session."
    )
    report.note(
        f"served-coalesced drives {load_clients} concurrent clients with a "
        f"{coalesce_window_ms:g} ms linger window; coalesce_rate is the fraction "
        "of completed requests that shared another request's dispatch."
    )
    return report


FIG10_MODELS = (
    ("necker_cube_s", True),
    ("predator_prey_s", True),
    ("botvinick_stroop", True),
)


def figure10_autotune_report(quick: bool = False) -> FigureReport:
    """Pipeline autotuner: default<O2> vs the equivalence-proven tuned winner.

    A repro-only extension of the evaluation (the paper hard-codes one
    pipeline per optimisation level).  For each workload the autotuner
    generates candidate pipelines from the incumbent's per-pass changed/no-op
    profile, proves each candidate bitwise-equivalent on the workload's
    representative inputs, races the survivors, and reports the winner's
    weighted compile+run objective next to the incumbent's.  ``gate`` rows
    feed ``check_autotune_floor``: the winner's objective must never exceed
    the incumbent's (the incumbent itself is always raced and eligible, so
    "no candidate wins" degrades to returning the incumbent, not to a
    regression).
    """
    from ..driver.autotune import AutotuneConfig, run_autotune
    from ..fuzz.gen import generate_scale_spec

    config = AutotuneConfig(
        budget=6 if quick else 12,
        repeats=2 if quick else 3,
        warmup=0 if quick else 1,
    )
    report = FigureReport(
        "Figure 10", "Pipeline autotuner: default<O2> vs tuned winner"
    )

    workloads = []
    for name, gate in FIG10_MODELS:
        entry = get_model(name)
        workloads.append(
            (name, entry.build(), entry.inputs(), entry.num_trials, gate)
        )
    for seed, n_mechanisms in ((0, 60), (1, 120)):
        spec = generate_scale_spec(seed, n_mechanisms=n_mechanisms, width=6)
        workloads.append(
            (spec.name, spec.build(), spec.inputs, spec.num_trials, True)
        )

    for name, composition, inputs, num_trials, gate in workloads:
        result = run_autotune(
            composition, inputs, num_trials=num_trials, config=config,
            store=False,
        )
        rejected = sum(1 for r in result.records if r.status == "rejected")
        errored = sum(1 for r in result.records if r.status == "error")
        report.add(
            workload=name,
            default_pipeline=result.incumbent,
            default_objective_s=result.incumbent_objective,
            tuned_pipeline=result.winner,
            tuned_objective_s=result.objective,
            improvement=result.improvement,
            candidates_searched=result.searched,
            proven_equivalent=sum(1 for r in result.records if r.equivalent),
            rejected=rejected,
            errored=errored,
            tuned_is_incumbent=result.winner == result.incumbent,
            gate=gate,
        )
    report.note(
        f"objective = {config.compile_weight:g} * pipeline_compile_s + "
        f"{config.run_weight:g} * min-of-{config.repeats} run_s; every raced "
        "candidate was first proven bitwise-equivalent (result/monitor/state "
        "buffers + final PRNG counters) to the incumbent on the workload's "
        "representative inputs."
    )
    report.note(
        "store=False: every row reflects a fresh search. Cached resolution "
        "(pipeline=\"auto\") is covered by figure9's serving path and "
        "tests/test_autotune.py."
    )
    return report


def fuzz_campaign_report(
    seed: int = 0, n_models: int = 10, pipelines=None
) -> FigureReport:
    """Timing/coverage report for a generative conformance campaign.

    Not a paper figure — a harness-level health report: how much wall clock a
    campaign of ``n_models`` random models costs per oracle leg, how large
    the generated models are, and whether any leg diverged.  The nightly CI
    fuzz job uploads this table next to any reproducers.
    """
    from .. import fuzz

    kwargs = {"pipelines": pipelines} if pipelines is not None else {}
    campaign = fuzz.run_campaign(
        seed=seed, n_models=n_models, shrink=False, **kwargs
    )
    report = FigureReport(
        figure="fuzz-campaign",
        title=f"generative conformance campaign ({n_models} models, seed {seed})",
    )
    seconds = [float(row["seconds"]) for row in campaign.rows]
    grids = [int(row["grid"]) for row in campaign.rows]
    report.add(
        models=n_models,
        failures=len(campaign.failures),
        legs=campaign.legs,
        grid_models=sum(1 for g in grids if g),
        mean_seconds_per_model=float(np.mean(seconds)) if seconds else 0.0,
        max_seconds_per_model=max(seconds) if seconds else 0.0,
        seconds_per_leg=(campaign.elapsed_seconds / campaign.legs) if campaign.legs else 0.0,
        total_seconds=campaign.elapsed_seconds,
    )
    for failure in campaign.failures:
        report.note(failure.describe())
    if not campaign.failures:
        report.note("all legs bitwise-identical (engines x pipelines x cold/cached)")
    return report


def all_reports(quick: bool = True) -> List[FigureReport]:
    """Regenerate every figure (used by ``examples/regenerate_paper_figures.py``)."""
    reports = [
        figure2_report(),
        figure3_report(),
        figure4_report(trials_scale=0.5 if quick else 1.0),
        figure5a_report(variants=("s", "m", "l"), include_xl=not quick, xl_levels=40 if quick else 100),
        figure5b_report(trials=10 if quick else 20),
        figure5b_lane_report(quick=quick),
        figure5c_report(levels_per_entity=12 if quick else 20),
        figure6_report(),
        figure7_report(trials=2 if quick else 4),
        figure7_cache_report(repeats=2 if quick else 4),
        figure8_report(trials_scale=0.5 if quick else 1.0, repeats=3 if quick else 5),
    ]
    return reports
