"""Machine-readable benchmark emission: the repo's perf trajectory.

Figure reports are human tables; the perf trajectory needs data a later PR
(or CI) can diff.  This module serialises :class:`~repro.bench.harness.
FigureReport` rows into ``BENCH_<name>.json`` files with the schema

.. code-block:: json

    {"bench": "fig8", "commit": "<hex|unknown>", "rows": [{...}, ...]}

``BENCH_fig5a.json`` (predator-prey scaling), ``BENCH_fig5b_lanes.json``
(batched scalar-vs-lane execution), ``BENCH_fig8.json`` (dispatch-loop vs
structured codegen), ``BENCH_fig7_scale.json`` (compile cost vs mechanism
count + edit-recompile vs full compile) and ``BENCH_fig9_serving.json``
(serving daemon: cold compile vs warm session vs coalesced load) and
``BENCH_fig10_autotune.json`` (pipeline autotuner: default<O2> vs the
equivalence-proven tuned winner) are committed at the repository root; the
CI perf-smoke job regenerates the first three (and sanity-asserts that the
compiled engine beats the IR interpreter and the lane engine beats scalar
compiled by healthy factors), the compile-cost job regenerates
``fig7_scale``, the serving-smoke job regenerates ``fig9_serving`` with the
served-warm >= 5x cold floor, and the autotune-smoke job regenerates
``fig10_autotune`` with the tuned <= default floor; every job uploads its
fresh JSON as artifacts.

CLI::

    python -m repro.bench.json_out --out-dir . [--quick] \
        [--assert-compiled-vs-interp 3.0] [--assert-lane-vs-compiled 5.0] \
        [--benches fig5a,fig5b_lanes,fig8]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import subprocess
import sys
from typing import Dict, List, Optional, Sequence

from .harness import (
    FigureReport,
    _time_call,
    figure5a_report,
    figure5b_lane_report,
    figure7_scale_report,
    figure8_report,
    figure9_serving_report,
    figure10_autotune_report,
)

#: Schema version recorded in every payload (bump on breaking row changes).
SCHEMA_VERSION = 1


def current_commit() -> str:
    """The commit hash the rows were measured at (best effort)."""
    for env in ("GITHUB_SHA", "CI_COMMIT_SHA"):
        value = os.environ.get(env)
        if value:
            return value
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def _jsonable(value):
    """Coerce a report cell into strict JSON (no NaN/Inf literals)."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        return _jsonable(item())
    return str(value)


def bench_payload(bench: str, report: FigureReport, commit: Optional[str] = None) -> Dict:
    """Serialise ``report`` into the ``BENCH_*.json`` schema."""
    return {
        "bench": bench,
        "commit": commit if commit is not None else current_commit(),
        "schema_version": SCHEMA_VERSION,
        "title": report.title,
        "notes": list(report.notes),
        "rows": [
            {str(k): _jsonable(v) for k, v in row.items()} for row in report.rows
        ],
    }


def write_bench_json(
    path: str, bench: str, report: FigureReport, commit: Optional[str] = None
) -> Dict:
    """Write ``report`` as ``path`` in the BENCH json schema; returns payload."""
    payload = bench_payload(bench, report, commit=commit)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, allow_nan=False)
        handle.write("\n")
    return payload


# ---------------------------------------------------------------------------
# Bench builders (name -> report factory)
# ---------------------------------------------------------------------------


def _build_fig5a(quick: bool) -> FigureReport:
    if quick:
        return figure5a_report(variants=("s", "m"), include_xl=False)
    return figure5a_report(variants=("s", "m", "l"), include_xl=True, xl_levels=40)


def _build_fig8(quick: bool) -> FigureReport:
    if quick:
        return figure8_report(trials_scale=1.0, repeats=3)
    return figure8_report(trials_scale=2.0, repeats=5)


def _build_fig7_scale(quick: bool) -> FigureReport:
    if quick:
        return figure7_scale_report(sizes=(50, 100, 200), edit_point=200)
    return figure7_scale_report(sizes=(50, 100, 200, 500), edit_point=200)


def _build_fig5b_lanes(quick: bool) -> FigureReport:
    return figure5b_lane_report(quick=quick)


def _build_fig9_serving(quick: bool) -> FigureReport:
    return figure9_serving_report(quick=quick)


def _build_fig10_autotune(quick: bool) -> FigureReport:
    return figure10_autotune_report(quick=quick)


BENCH_BUILDERS = {
    "fig5a": _build_fig5a,
    "fig5b_lanes": _build_fig5b_lanes,
    "fig7_scale": _build_fig7_scale,
    "fig8": _build_fig8,
    "fig9_serving": _build_fig9_serving,
    "fig10_autotune": _build_fig10_autotune,
}


def check_lane_floor(report: FigureReport, factor: float) -> None:
    """Raise ``AssertionError`` when a gated lane row misses ``factor``.

    Only ``gate=True`` rows (the loop-heavy grid-search workloads) carry the
    floor; context rows — including the deliberate below-crossover regression
    row — are exempt.
    """
    gated = [row for row in report.rows if row.get("gate")]
    if not gated:
        raise AssertionError("lane floor check found no gated rows")
    offenders = [row for row in gated if row["speedup"] < factor]
    if offenders:
        detail = ", ".join(
            f"{row['workload']}@{row['lanes']}={row['speedup']:.2f}x"
            for row in offenders
        )
        raise AssertionError(
            f"perf smoke failed: lane beat scalar compiled by less than "
            f"{factor}x on {detail}"
        )


def check_serving_floor(report: FigureReport, factor: float) -> None:
    """Raise ``AssertionError`` when a gated served-warm row misses ``factor``.

    The floor is the serving daemon's reason to exist: on ``gate=True``
    workloads a warm-session request must beat the cold per-request compile
    baseline by at least ``factor`` at p50.  The coalesced rows additionally
    must have seen real coalescing (rate > 0) — a zero rate means the load
    generator never produced concurrent same-key requests and the bench
    measured nothing.
    """
    warm = [
        row for row in report.rows if row.get("gate") and row["mode"] == "served-warm"
    ]
    if not warm:
        raise AssertionError("serving floor check found no gated served-warm rows")
    offenders = [row for row in warm if row["speedup_vs_cold"] < factor]
    if offenders:
        detail = ", ".join(
            f"{row['workload']}={row['speedup_vs_cold']:.2f}x" for row in offenders
        )
        raise AssertionError(
            f"perf smoke failed: served-warm p50 beat the cold per-request "
            f"compile by less than {factor}x on {detail}"
        )
    stale = [
        row
        for row in report.rows
        if row["mode"] == "served-coalesced" and not row["coalesce_rate"] > 0.0
    ]
    if stale:
        detail = ", ".join(str(row["workload"]) for row in stale)
        raise AssertionError(
            f"perf smoke failed: no coalescing observed under load on {detail}"
        )


def check_autotune_floor(report: FigureReport) -> None:
    """Raise ``AssertionError`` when a gated tuned row exceeds the default.

    The autotuner's contract is unconditional on ``gate=True`` workloads: the
    winner's measured objective must be <= the incumbent's, because the
    incumbent is always raced and always eligible (a fruitless search returns
    the incumbent, never something slower).  Rows where every non-incumbent
    candidate was rejected must still satisfy this via
    ``tuned_is_incumbent``.  Unlike the lane/serving floors there is no
    tunable factor — equality is the floor.
    """
    gated = [row for row in report.rows if row.get("gate")]
    if not gated:
        raise AssertionError("autotune floor check found no gated rows")
    offenders = [
        row
        for row in gated
        if row["tuned_objective_s"] > row["default_objective_s"]
        and not row["tuned_is_incumbent"]
    ]
    if offenders:
        detail = ", ".join(
            f"{row['workload']}: tuned {row['tuned_objective_s']:.4f}s vs "
            f"default {row['default_objective_s']:.4f}s"
            for row in offenders
        )
        raise AssertionError(
            f"autotune smoke failed: tuned objective exceeded default<O2> on {detail}"
        )
    unproven = [
        row for row in gated if row["rejected"] + row["errored"] + row[
            "proven_equivalent"
        ] != row["candidates_searched"] + 1  # +1: the incumbent's own record
    ]
    if unproven:
        detail = ", ".join(str(row["workload"]) for row in unproven)
        raise AssertionError(
            f"autotune smoke failed: candidate accounting inconsistent on {detail}"
        )


def measure_compiled_vs_interp(
    models: Sequence[str] = ("predator_prey_s", "necker_cube_s"),
) -> List[Dict]:
    """Time the compiled engine against ``ir-interp`` on small models.

    Measurement only — every model is measured even if some regress, so the
    CI artifact always contains the full rows; the factor assertion lives in
    :func:`assert_compiled_beats_interp` / ``main``.
    """
    from ..core.distill import compile_composition
    from ..models import get_model

    rows: List[Dict] = []
    for name in models:
        entry = get_model(name)
        inputs = entry.inputs()
        trials = max(entry.num_trials, 1)
        compiled = compile_composition(entry.build(), pipeline="default<O2>")
        try:
            compiled_s = _time_call(
                lambda: compiled.run(inputs, num_trials=trials, seed=0, engine="compiled"),
                3,
            )
            interp_s = _time_call(
                lambda: compiled.run(inputs, num_trials=trials, seed=0, engine="ir-interp")
            )
        finally:
            compiled.close_engines()
        rows.append(
            {
                "model": name,
                "trials": trials,
                "compiled_s": compiled_s,
                "ir_interp_s": interp_s,
                "advantage": interp_s / compiled_s,
            }
        )
    return rows


def check_advantage_floor(rows: Sequence[Dict], factor: float) -> None:
    """Raise ``AssertionError`` when any measured advantage is below ``factor``."""
    offenders = [row for row in rows if row["advantage"] < factor]
    if offenders:
        detail = ", ".join(
            f"{row['model']}={row['advantage']:.2f}x" for row in offenders
        )
        raise AssertionError(
            f"perf smoke failed: compiled beat ir-interp by less than "
            f"{factor}x on {detail}"
        )


def assert_compiled_beats_interp(
    factor: float, models: Sequence[str] = ("predator_prey_s", "necker_cube_s")
) -> List[Dict]:
    """Perf-smoke sanity bar: compiled must beat ir-interp by ``factor``."""
    rows = measure_compiled_vs_interp(models)
    check_advantage_floor(rows, factor)
    return rows


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.json_out",
        description="Write BENCH_*.json perf-trajectory files.",
    )
    parser.add_argument("--out-dir", default=".", help="directory for BENCH_*.json")
    parser.add_argument(
        "--benches",
        default="fig5a,fig8",
        help=f"comma-separated subset of {sorted(BENCH_BUILDERS)}",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller variants/repeats (CI smoke)"
    )
    parser.add_argument(
        "--assert-compiled-vs-interp",
        type=float,
        default=None,
        metavar="FACTOR",
        help="also run the 2-model compiled-vs-ir-interp sanity check and fail "
        "below FACTOR (writes BENCH_perf_smoke.json)",
    )
    parser.add_argument(
        "--assert-lane-vs-compiled",
        type=float,
        default=None,
        metavar="FACTOR",
        help="fail when a gated fig5b_lanes row beats scalar compiled by less "
        "than FACTOR (requires fig5b_lanes in --benches)",
    )
    parser.add_argument(
        "--assert-served-warm-vs-cold",
        type=float,
        default=None,
        metavar="FACTOR",
        help="fail when a gated fig9_serving served-warm row beats the cold "
        "per-request compile by less than FACTOR at p50, or when the "
        "coalesced load saw no coalescing (requires fig9_serving in --benches)",
    )
    parser.add_argument(
        "--assert-autotune",
        action="store_true",
        help="fail when a gated fig10_autotune row's tuned objective exceeds "
        "the default<O2> objective (requires fig10_autotune in --benches)",
    )
    args = parser.parse_args(argv)

    os.makedirs(args.out_dir, exist_ok=True)
    commit = current_commit()
    lane_report: Optional[FigureReport] = None
    serving_report: Optional[FigureReport] = None
    autotune_report: Optional[FigureReport] = None
    for bench in [b.strip() for b in args.benches.split(",") if b.strip()]:
        builder = BENCH_BUILDERS.get(bench)
        if builder is None:
            parser.error(f"unknown bench {bench!r}; known: {sorted(BENCH_BUILDERS)}")
        report = builder(args.quick)
        if bench == "fig5b_lanes":
            lane_report = report
        if bench == "fig9_serving":
            serving_report = report
        if bench == "fig10_autotune":
            autotune_report = report
        path = os.path.join(args.out_dir, f"BENCH_{bench}.json")
        write_bench_json(path, bench, report, commit=commit)
        print(report.format_table())
        print(f"wrote {path}")

    if args.assert_autotune:
        if autotune_report is None:
            parser.error("--assert-autotune requires fig10_autotune in --benches")
        check_autotune_floor(autotune_report)

    if args.assert_lane_vs_compiled is not None:
        # The JSON is already on disk: a failing floor still uploads evidence.
        if lane_report is None:
            parser.error("--assert-lane-vs-compiled requires fig5b_lanes in --benches")
        check_lane_floor(lane_report, args.assert_lane_vs_compiled)

    if args.assert_served_warm_vs_cold is not None:
        if serving_report is None:
            parser.error(
                "--assert-served-warm-vs-cold requires fig9_serving in --benches"
            )
        check_serving_floor(serving_report, args.assert_served_warm_vs_cold)

    if args.assert_compiled_vs_interp is not None:
        # Measure, persist the rows, *then* assert: a failing run must still
        # upload the timing evidence as a CI artifact.
        rows = measure_compiled_vs_interp()
        smoke = FigureReport("perf-smoke", "compiled vs ir-interp sanity factor")
        for row in rows:
            smoke.add(**row)
        path = os.path.join(args.out_dir, "BENCH_perf_smoke.json")
        write_bench_json(path, "perf_smoke", smoke, commit=commit)
        print(smoke.format_table())
        print(f"wrote {path}")
        check_advantage_floor(rows, args.assert_compiled_vs_interp)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI in CI
    sys.exit(main())
