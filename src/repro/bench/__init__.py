"""repro.bench — harness regenerating the paper's tables and figures.

See :mod:`repro.bench.harness`; the pytest-benchmark entry points live in the
top-level ``benchmarks/`` directory (one file per figure).
"""

from .harness import (
    FigureReport,
    all_reports,
    figure2_report,
    figure3_report,
    figure4_report,
    figure5a_report,
    figure5b_report,
    figure5c_report,
    figure6_report,
    figure7_report,
    figure7_cache_report,
    figure8_report,
    fuzz_campaign_report,
)


def __getattr__(name):
    # Lazy re-export: importing json_out eagerly would shadow the
    # ``python -m repro.bench.json_out`` CLI entry point (runpy warns when
    # the submodule is already in sys.modules).
    if name in ("bench_payload", "current_commit", "write_bench_json"):
        from . import json_out

        return getattr(json_out, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FigureReport",
    "all_reports",
    "figure2_report",
    "figure3_report",
    "figure4_report",
    "figure5a_report",
    "figure5b_report",
    "figure5c_report",
    "figure6_report",
    "figure7_report",
    "figure7_cache_report",
    "figure8_report",
    "fuzz_campaign_report",
    "bench_payload",
    "current_commit",
    "write_bench_json",
]
