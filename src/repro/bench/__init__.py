"""repro.bench — harness regenerating the paper's tables and figures.

See :mod:`repro.bench.harness`; the pytest-benchmark entry points live in the
top-level ``benchmarks/`` directory (one file per figure).
"""

from .harness import (
    FigureReport,
    all_reports,
    figure2_report,
    figure3_report,
    figure4_report,
    figure5a_report,
    figure5b_report,
    figure5c_report,
    figure6_report,
    figure7_report,
)

__all__ = [
    "FigureReport",
    "all_reports",
    "figure2_report",
    "figure3_report",
    "figure4_report",
    "figure5a_report",
    "figure5b_report",
    "figure5c_report",
    "figure6_report",
    "figure7_report",
]
