"""Wire protocol for the serving daemon: newline-delimited JSON messages.

Every message is one JSON object on one line.  Requests carry ``id`` (client
chosen, echoed back) and ``op``; responses carry ``id`` and ``ok``.  Failed
requests get ``ok: false`` plus a structured ``error`` object with a stable
``code`` (see :data:`ERROR_CODES`), a human-readable ``message`` and a
``retryable`` hint.

Float fidelity: results cross the wire as JSON numbers.  Python's ``json``
module emits ``repr``-style shortest round-trip representations (and the
``NaN``/``Infinity`` tokens), so every IEEE-754 double deserialises to the
bitwise-identical value — which is what lets the concurrency suite assert
served results equal solo in-process runs exactly.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional

import numpy as np

from ..cogframe.runner import RunResults, TrialResult

__all__ = [
    "ERROR_CODES",
    "MessageReader",
    "encode",
    "error_payload",
    "jsonable",
    "ok_payload",
    "results_from_wire",
    "results_to_wire",
    "send_message",
]

#: Stable error codes a response's ``error.code`` may carry.
ERROR_CODES = (
    "server_busy",  # bounded admission queue is full (backpressure)
    "deadline_exceeded",  # request expired before it was dispatched
    "shutting_down",  # daemon is draining; no new admissions
    "bad_request",  # malformed request (unknown op/model, bad shapes)
    "compile_error",  # the model failed to compile
    "engine_error",  # engine dispatch failed (after the retry, if transient)
    "internal",  # unexpected server-side failure
)

_RETRYABLE = {"server_busy", "engine_error"}


def encode(message: Dict[str, object]) -> bytes:
    """One message, one line: compact JSON terminated by ``\\n``."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def send_message(sock: socket.socket, message: Dict[str, object]) -> None:
    sock.sendall(encode(message))


def ok_payload(msg_id, **fields) -> Dict[str, object]:
    payload: Dict[str, object] = {"id": msg_id, "ok": True}
    payload.update(fields)
    return payload


def error_payload(
    msg_id, code: str, message: str, retryable: Optional[bool] = None
) -> Dict[str, object]:
    if retryable is None:
        retryable = code in _RETRYABLE
    return {
        "id": msg_id,
        "ok": False,
        "error": {"code": code, "message": message, "retryable": bool(retryable)},
    }


class MessageReader:
    """Buffered line reader turning a socket stream into message dicts."""

    def __init__(self, sock: socket.socket, max_line: int = 64 * 1024 * 1024):
        self._sock = sock
        self._buffer = bytearray()
        self._max_line = max_line

    def read(self) -> Optional[Dict[str, object]]:
        """Next message, or ``None`` on a clean EOF."""
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                if not line.strip():
                    continue
                message = json.loads(line.decode("utf-8"))
                if not isinstance(message, dict):
                    raise ValueError("wire messages must be JSON objects")
                return message
            if len(self._buffer) > self._max_line:
                raise ValueError("wire message exceeds the line-length bound")
            chunk = self._sock.recv(65536)
            if not chunk:
                if self._buffer.strip():
                    raise EOFError("connection closed mid-message")
                return None
            self._buffer.extend(chunk)


# ---------------------------------------------------------------------------
# RunResults <-> wire
# ---------------------------------------------------------------------------


def jsonable(value):
    """Recursively convert numpy arrays/scalars to JSON-compatible values.

    Clients pass model inputs exactly as ``EngineInstance.run`` accepts them
    (lists, dicts, ndarrays); this flattens the numpy pieces without touching
    float values, so the server-side ``normalize_inputs`` reconstructs the
    bitwise-identical arrays.
    """
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, dict):
        return {key: jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    return value


def _array_to_wire(value) -> List[float]:
    # tolist() preserves shape (nested lists) and emits exact-repr floats.
    return np.asarray(value, dtype=float).tolist()


def results_to_wire(results: RunResults) -> Dict[str, object]:
    """Serialise a :class:`RunResults` to a JSON-compatible dict."""
    return {
        "model_name": results.model_name,
        "engine": results.engine,
        "wall_seconds": results.wall_seconds,
        "breakdown": {k: float(v) for k, v in results.breakdown.items()},
        "trials": [
            {
                "passes": int(trial.passes),
                "outputs": {
                    name: _array_to_wire(value)
                    for name, value in trial.outputs.items()
                },
                "monitored": {
                    name: [_array_to_wire(step) for step in steps]
                    for name, steps in trial.monitored.items()
                },
            }
            for trial in results.trials
        ],
    }


def results_from_wire(payload: Dict[str, object]) -> RunResults:
    """Rebuild a :class:`RunResults` from its wire form (bitwise floats)."""
    trials = [
        TrialResult(
            outputs={
                name: np.array(value, dtype=float)
                for name, value in trial["outputs"].items()
            },
            passes=int(trial["passes"]),
            monitored={
                name: [np.array(step, dtype=float) for step in steps]
                for name, steps in trial["monitored"].items()
            },
        )
        for trial in payload["trials"]
    ]
    return RunResults(
        model_name=payload["model_name"],
        trials=trials,
        wall_seconds=float(payload["wall_seconds"]),
        engine=payload["engine"],
        breakdown=dict(payload.get("breakdown", {})),
    )
