"""Synchronous client for the serving daemon.

One :class:`ServeClient` owns one socket and issues one request at a time
(it is NOT thread-safe — give each worker thread its own client, which is
also what exercises the daemon's coalescing).  Wire errors surface as the
typed :mod:`repro.errors` serve exceptions::

    from repro.serve import ServeClient
    from repro.errors import ServerBusy

    with ServeClient("/tmp/repro.sock") as client:
        results = client.run("stroop_botvinick", inputs, num_trials=8)
"""

from __future__ import annotations

import itertools
import socket
import time
from typing import Dict, List, Optional, Tuple, Union

from ..cogframe.runner import RunResults
from ..errors import DeadlineExceeded, ServeError, ServerBusy, ServerUnavailable
from . import protocol

__all__ = ["ServeClient", "wait_for_server"]

Address = Union[str, Tuple[str, int]]

_ERROR_TYPES = {
    "server_busy": ServerBusy,
    "deadline_exceeded": DeadlineExceeded,
    "shutting_down": ServerUnavailable,
}


def _connect(address: Address, timeout: Optional[float]) -> socket.socket:
    if isinstance(address, str):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address)
    else:
        sock = socket.create_connection(tuple(address), timeout=timeout)
    return sock


class ServeClient:
    """A connected client.  ``timeout`` bounds every socket wait (seconds)."""

    def __init__(self, address: Address, timeout: Optional[float] = 120.0):
        self.address = address
        self.timeout = timeout
        self._sock = _connect(address, timeout)
        self._reader = protocol.MessageReader(self._sock)
        self._ids = itertools.count(1)

    # -- plumbing ----------------------------------------------------------------
    def _call(self, payload: Dict[str, object]) -> Dict[str, object]:
        msg_id = next(self._ids)
        payload = dict(payload, id=msg_id)
        try:
            protocol.send_message(self._sock, payload)
            while True:
                response = self._reader.read()
                if response is None:
                    raise ServerUnavailable("server closed the connection")
                if response.get("id") == msg_id:
                    break
                # Response to an abandoned earlier request; skip it.
        except (OSError, EOFError) as exc:
            raise ServerUnavailable(f"lost connection to server: {exc}") from exc
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        code = error.get("code", "serve_error")
        message = error.get("message", "request failed")
        error_type = _ERROR_TYPES.get(code, ServeError)
        raise error_type(message, code=code)

    # -- operations --------------------------------------------------------------
    def run(
        self,
        model: str,
        inputs,
        num_trials: Optional[int] = None,
        seed: int = 0,
        target: Optional[str] = None,
        pipeline: Optional[str] = None,
        compile_seed: int = 0,
        flags: Optional[Dict[str, object]] = None,
        deadline_ms: Optional[float] = None,
        **options,
    ) -> RunResults:
        """Execute one request; returns a :class:`RunResults` bitwise equal
        to the same solo in-process run.  ``results.coalesced`` reports how
        many requests shared the engine dispatch (1 = solo)."""
        payload = self._run_payload(
            "run", model, target, pipeline, compile_seed, flags, deadline_ms, options
        )
        payload["inputs"] = protocol.jsonable(inputs)
        if num_trials is not None:
            payload["num_trials"] = num_trials
        payload["seed"] = seed
        response = self._call(payload)
        results = protocol.results_from_wire(response["results"])
        results.coalesced = response.get("coalesced", 1)
        return results

    def run_batch(
        self,
        model: str,
        inputs_batch,
        num_trials=None,
        seed=0,
        target: Optional[str] = None,
        pipeline: Optional[str] = None,
        compile_seed: int = 0,
        flags: Optional[Dict[str, object]] = None,
        deadline_ms: Optional[float] = None,
        **options,
    ) -> List[RunResults]:
        """Batch counterpart of :meth:`run`; ``num_trials``/``seed`` may be
        scalars or per-element lists, exactly like ``Session.run_batch``."""
        payload = self._run_payload(
            "run_batch", model, target, pipeline, compile_seed, flags, deadline_ms, options
        )
        payload["inputs_batch"] = [
            protocol.jsonable(inputs) for inputs in inputs_batch
        ]
        if num_trials is not None:
            payload["num_trials"] = num_trials
        payload["seed"] = seed
        response = self._call(payload)
        results = [protocol.results_from_wire(wire) for wire in response["results"]]
        coalesced = response.get("coalesced", 1)
        for result in results:
            result.coalesced = coalesced
        return results

    def compile(
        self,
        model: str,
        target: Optional[str] = None,
        pipeline: Optional[str] = None,
        compile_seed: int = 0,
        flags: Optional[Dict[str, object]] = None,
        deadline_ms: Optional[float] = None,
    ) -> Dict[str, object]:
        """Warm the daemon's compile cache; returns compile/artifact stats."""
        payload = self._run_payload(
            "compile", model, target, pipeline, compile_seed, flags, deadline_ms, {}
        )
        return self._call(payload)["compile"]

    def stats(self) -> Dict[str, object]:
        return self._call({"op": "stats"})["stats"]

    def ping(self) -> bool:
        return bool(self._call({"op": "ping"}).get("pong"))

    def shutdown(self) -> None:
        """Ask the daemon to drain and exit (in-flight work completes)."""
        self._call({"op": "shutdown"})

    def _run_payload(
        self, op, model, target, pipeline, compile_seed, flags, deadline_ms, options
    ) -> Dict[str, object]:
        payload: Dict[str, object] = {"op": op, "model": model}
        if target is not None:
            payload["target"] = target
        if pipeline is not None:
            payload["pipeline"] = pipeline
        if compile_seed:
            payload["compile_seed"] = compile_seed
        if flags is not None:
            payload["flags"] = flags
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if options:
            payload["options"] = options
        return payload

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def wait_for_server(
    address: Address, timeout: float = 10.0, interval: float = 0.05
) -> None:
    """Block until a daemon answers ``ping`` at ``address`` (boot-wait).

    Raises :class:`ServerUnavailable` if nothing answers within ``timeout``
    seconds.  Used by the benchmark load generator and the CI smoke job to
    wait out a freshly forked daemon's import/bind window.
    """
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            probe = ServeClient(address, timeout=min(timeout, 5.0))
        except (OSError, ServeError) as exc:
            last_error = exc
        else:
            try:
                if probe.ping():
                    return
            except ServeError as exc:
                last_error = exc
            finally:
                probe.close()
        time.sleep(interval)
    raise ServerUnavailable(
        f"no server answered at {address!r} within {timeout:.1f}s: {last_error}"
    )
