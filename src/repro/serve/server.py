"""The serving daemon: a coalescing request front-end over a warm Session.

One long-lived process owns a :class:`repro.Session` (compiled-model cache),
an optional :class:`~repro.driver.artifacts.ArtifactStore` and the persistent
engine bindings (worker pools, lane programs).  Clients connect over a local
socket (AF_UNIX path or TCP host/port) and submit run/run_batch/compile
requests; the daemon amortises compilation and pool spin-up across all of
them.

Admission is a bounded queue: when ``max_queue`` requests are already
waiting, new work is rejected immediately with a structured ``server_busy``
error (backpressure — clients retry or shed load; nothing silently queues
without bound).  Each request may carry a deadline; requests that expire
while queued are answered with ``deadline_exceeded`` instead of running
stale.

A single dispatcher thread drains the queue.  When several queued requests
target the same *coalesce key* — structural model fingerprint x pipeline x
compile seed x flags x engine target x run options — they are folded into
ONE engine ``run_batch`` dispatch and the per-element results are split back
per request.  ``run_batch`` is documented bitwise-identical to looping
``run``, so coalesced clients observe exactly the results solo execution
would have produced (the concurrency suite asserts this bitwise).

Transient dispatch failures (a worker killed mid-request shows up as a
watchdog timeout or a pool error) are retried once against a reset engine
binding before a structured ``engine_error`` is surfaced.  SIGTERM/SIGINT
flip the daemon into draining mode: queued and in-flight work completes,
new admissions are rejected with ``shutting_down``.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..cogframe.runner import normalize_inputs
from ..driver.artifacts import normalize_flags, resolve_store
from ..driver.engines import get_engine
from ..driver.session import Session, structural_fingerprint
from ..errors import CompilationError, EngineError, ModelStructureError, ReproError
from . import protocol

__all__ = ["DispatchTimeout", "ServeConfig", "Server"]

Address = Union[str, Tuple[str, int]]


class DispatchTimeout(ReproError):
    """An engine dispatch exceeded the watchdog budget.

    A worker process SIGKILLed mid-chunk leaves ``multiprocessing.Pool.map``
    waiting forever for a task that no longer exists; the watchdog converts
    that hang into this exception so the dispatcher can reset the pool and
    retry (see ``_MulticoreInstance.reset``).
    """


@dataclass
class ServeConfig:
    """Tunables for :class:`Server` admission, coalescing and retries."""

    #: Bounded admission queue: requests beyond this are rejected busy.
    max_queue: int = 64
    #: Most requests folded into one coalesced engine dispatch.
    max_coalesce: int = 32
    #: Seconds the dispatcher lingers after popping a request to let
    #: same-key requests arrive and coalesce.  0 coalesces only work that
    #: is *already* queued (no added latency).
    coalesce_window: float = 0.0
    #: Watchdog budget per engine dispatch; ``None`` disables the watchdog
    #: (a lost-worker hang then blocks the dispatcher forever).
    dispatch_timeout: Optional[float] = 60.0
    #: Default per-request deadline in seconds (``None``: no deadline).
    default_deadline: Optional[float] = None
    #: Ring size for the latency percentiles in ``stats``.
    latency_window: int = 4096
    default_target: str = "compiled"
    default_pipeline: str = "default<O2>"


class _Connection:
    """A client socket plus the write lock serialising responses onto it."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.lock = threading.Lock()

    def send(self, message: Dict[str, object]) -> bool:
        try:
            with self.lock:
                protocol.send_message(self.sock, message)
            return True
        except OSError:
            return False

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class _Request:
    """One admitted run/run_batch/compile request waiting for dispatch."""

    __slots__ = (
        "conn",
        "msg_id",
        "op",
        "key",
        "composition",
        "target",
        "pipeline",
        "compile_seed",
        "flags",
        "options",
        "elements",
        "deadline",
        "arrived",
    )

    def __init__(
        self,
        conn: _Connection,
        msg_id,
        op: str,
        key: Tuple,
        composition,
        target: str,
        pipeline: str,
        compile_seed: int,
        flags: Optional[Dict[str, object]],
        options: Dict[str, object],
        elements: List[Tuple[object, Optional[int], int]],
        deadline: Optional[float],
        arrived: float,
    ):
        self.conn = conn
        self.msg_id = msg_id
        self.op = op
        self.key = key
        self.composition = composition
        self.target = target
        self.pipeline = pipeline
        self.compile_seed = compile_seed
        self.flags = flags
        self.options = options
        self.elements = elements
        self.deadline = deadline
        self.arrived = arrived

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline


#: Failures worth one retry against a reset engine binding.  ``OSError``
#: covers broken pool pipes; ``EOFError`` covers a worker dying while the
#: parent reads its result; ``DispatchTimeout`` covers lost-task hangs.
_TRANSIENT = (DispatchTimeout, OSError, EOFError)


class Server:
    """A serving daemon bound to ``address`` (unix path or ``(host, port)``).

    ``artifact_dir`` selects the artifact store exactly like
    :func:`repro.driver.artifacts.resolve_store`: ``None`` consults
    ``REPRO_ARTIFACT_DIR``, ``False`` disables the store, a path opens one.
    ``models`` optionally maps extra model names to compositions (or
    zero-argument builders) on top of the registry — tests use it to serve
    custom deterministic models.
    """

    def __init__(
        self,
        address: Address,
        artifact_dir=None,
        config: Optional[ServeConfig] = None,
        models: Optional[Dict[str, object]] = None,
    ):
        self.address = address
        self.config = config or ServeConfig()
        self.store = resolve_store(artifact_dir)
        self.session = Session(store=self.store if self.store is not None else False)
        self._extra_models = dict(models or {})
        self._compositions: Dict[str, Tuple[object, str]] = {}
        self._comp_lock = threading.Lock()

        self._lock = threading.Lock()
        self._queue_cv = threading.Condition(self._lock)
        self._queue: deque = deque()
        self._draining = False
        self._closed = False
        self._counters: Dict[str, int] = {
            "admitted": 0,
            "completed": 0,
            "failed": 0,
            "retries": 0,
            "rejected_busy": 0,
            "rejected_deadline": 0,
            "rejected_draining": 0,
            "dropped_responses": 0,
            "dispatches": 0,
            "coalesced_requests": 0,
            "max_batch": 0,
        }
        self._latencies: deque = deque(maxlen=self.config.latency_window)
        self._started = time.monotonic()

        self._listener: Optional[socket.socket] = None
        self._dispatcher: Optional[threading.Thread] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conns: set = set()
        self._conns_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Bind the socket and start the listener and dispatcher threads."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        if isinstance(self.address, str):
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                os.unlink(self.address)
            except OSError:
                pass
            listener.bind(self.address)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(tuple(self.address))
            # Rebind to the kernel-chosen port so callers may pass port 0.
            self.address = listener.getsockname()[:2]
        listener.listen(64)
        self._listener = listener
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._dispatcher.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()

    def serve_forever(self) -> None:
        """Run until :meth:`request_shutdown` (e.g. from a signal handler)."""
        if self._listener is None:
            self.start()
        self._dispatcher.join()
        self.shutdown()

    def request_shutdown(self) -> None:
        """Flip into draining mode; safe to call from a signal handler.

        New admissions are rejected with ``shutting_down``; queued and
        in-flight requests still complete (the drain contract).  The
        dispatcher exits once the queue is empty, unblocking
        :meth:`serve_forever`.
        """
        with self._queue_cv:
            self._draining = True
            self._queue_cv.notify_all()
        listener = self._listener
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass

    def shutdown(self, drain: bool = True) -> None:
        """Stop the daemon.  ``drain=True`` finishes queued work first."""
        if not drain:
            with self._queue_cv:
                pending = list(self._queue)
                self._queue.clear()
                self._counters["rejected_draining"] += len(pending)
            for request in pending:
                request.conn.send(
                    protocol.error_payload(
                        request.msg_id, "shutting_down", "server is shutting down"
                    )
                )
        self.request_shutdown()
        if self._dispatcher is not None and self._dispatcher is not threading.current_thread():
            self._dispatcher.join(timeout=60.0)
        if self._closed:
            return
        self._closed = True
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            conn.close()
        self.session.close()
        if isinstance(self.address, str):
            try:
                os.unlink(self.address)
            except OSError:
                pass

    def __enter__(self) -> "Server":
        if self._listener is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- model resolution --------------------------------------------------------
    def _composition(self, name: str):
        with self._comp_lock:
            cached = self._compositions.get(name)
        if cached is not None:
            return cached
        if name in self._extra_models:
            built = self._extra_models[name]
            composition = built() if callable(built) else built
        else:
            from ..models import get_model

            composition = get_model(name).build()
        entry = (composition, structural_fingerprint(composition))
        with self._comp_lock:
            return self._compositions.setdefault(name, entry)

    # -- connection handling -----------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while True:
            try:
                sock, _addr = listener.accept()
            except OSError:
                return
            conn = _Connection(sock)
            with self._conns_lock:
                self._conns.add(conn)
            thread = threading.Thread(
                target=self._client_loop, args=(conn,), name="repro-serve-client", daemon=True
            )
            thread.start()

    def _client_loop(self, conn: _Connection) -> None:
        reader = protocol.MessageReader(conn.sock)
        try:
            while True:
                try:
                    message = reader.read()
                except (ValueError, EOFError):
                    conn.send(
                        protocol.error_payload(None, "bad_request", "malformed message")
                    )
                    break
                if message is None:
                    break
                self._handle_message(conn, message)
        except OSError:
            pass
        finally:
            conn.close()
            with self._conns_lock:
                self._conns.discard(conn)

    def _handle_message(self, conn: _Connection, message: Dict[str, object]) -> None:
        msg_id = message.get("id")
        op = message.get("op")
        if op == "ping":
            conn.send(protocol.ok_payload(msg_id, pong=True))
        elif op == "stats":
            conn.send(protocol.ok_payload(msg_id, stats=self.stats()))
        elif op == "shutdown":
            conn.send(protocol.ok_payload(msg_id, draining=True))
            self.request_shutdown()
        elif op in ("run", "run_batch", "compile"):
            try:
                request = self._build_request(conn, msg_id, op, message)
            except (KeyError, TypeError, ValueError, EngineError) as exc:
                conn.send(protocol.error_payload(msg_id, "bad_request", str(exc)))
                return
            self._admit(request)
        else:
            conn.send(
                protocol.error_payload(msg_id, "bad_request", f"unknown op {op!r}")
            )

    def _build_request(
        self, conn: _Connection, msg_id, op: str, message: Dict[str, object]
    ) -> _Request:
        name = message["model"]
        if not isinstance(name, str):
            raise ValueError("'model' must be a model name string")
        composition, fingerprint = self._composition(name)

        target = message.get("target", self.config.default_target)
        get_engine(target)  # unknown targets fail admission, not dispatch
        pipeline = message.get("pipeline", self.config.default_pipeline)
        if not isinstance(pipeline, str):
            raise ValueError("'pipeline' must be a pipeline description string")
        compile_seed = int(message.get("compile_seed", 0))
        flags = message.get("flags")
        if flags is not None and not isinstance(flags, dict):
            raise ValueError("'flags' must be an object")
        options = message.get("options") or {}
        if not isinstance(options, dict):
            raise ValueError("'options' must be an object")

        elements: List[Tuple[object, Optional[int], int]] = []
        if op == "run":
            inputs = message["inputs"]
            trials = message.get("num_trials")
            seed = int(message.get("seed", 0))
            elements.append((inputs, None if trials is None else int(trials), seed))
        elif op == "run_batch":
            inputs_batch = message["inputs_batch"]
            if not isinstance(inputs_batch, list) or not inputs_batch:
                raise ValueError("'inputs_batch' must be a non-empty list")
            count = len(inputs_batch)
            trials = message.get("num_trials")
            trials_list = (
                list(trials) if isinstance(trials, list) else [trials] * count
            )
            seed = message.get("seed", 0)
            seeds = list(seed) if isinstance(seed, list) else [seed] * count
            if len(trials_list) != count or len(seeds) != count:
                raise ValueError(
                    "per-element num_trials/seed lists must match the batch size"
                )
            for inputs, element_trials, element_seed in zip(
                inputs_batch, trials_list, seeds
            ):
                elements.append(
                    (
                        inputs,
                        None if element_trials is None else int(element_trials),
                        int(element_seed),
                    )
                )

        # Validate inputs at admission: a malformed element must bounce as
        # this client's bad_request, never poison a coalesced dispatch that
        # carries other clients' work.
        for inputs, _trials, _seed in elements:
            normalize_inputs(composition, inputs)

        arrived = time.monotonic()
        deadline_ms = message.get("deadline_ms")
        if deadline_ms is None:
            deadline = (
                None
                if self.config.default_deadline is None
                else arrived + self.config.default_deadline
            )
        else:
            deadline = arrived + float(deadline_ms) / 1000.0

        key = (
            "compile" if op == "compile" else "run",
            fingerprint,
            pipeline,
            compile_seed,
            normalize_flags(flags),
            target,
            tuple(sorted((str(k), v) for k, v in options.items())),
        )
        return _Request(
            conn=conn,
            msg_id=msg_id,
            op=op,
            key=key,
            composition=composition,
            target=target,
            pipeline=pipeline,
            compile_seed=compile_seed,
            flags=flags,
            options=options,
            elements=elements,
            deadline=deadline,
            arrived=arrived,
        )

    def _admit(self, request: _Request) -> None:
        with self._queue_cv:
            if self._draining:
                self._counters["rejected_draining"] += 1
                reply = protocol.error_payload(
                    request.msg_id, "shutting_down", "server is draining"
                )
            elif len(self._queue) >= self.config.max_queue:
                self._counters["rejected_busy"] += 1
                reply = protocol.error_payload(
                    request.msg_id,
                    "server_busy",
                    f"admission queue is full ({self.config.max_queue} waiting)",
                )
            else:
                self._counters["admitted"] += 1
                self._queue.append(request)
                self._queue_cv.notify_all()
                return
        request.conn.send(reply)

    # -- dispatcher --------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            with self._queue_cv:
                while not self._queue and not self._draining:
                    self._queue_cv.wait()
                if not self._queue:
                    return  # draining and drained
                head = self._queue.popleft()
            if head.expired(time.monotonic()):
                self._reject_expired(head)
                continue
            batch = [head]
            self._coalesce_into(batch)
            self._dispatch(batch)

    def _coalesce_into(self, batch: List[_Request]) -> None:
        """Pull queued same-key requests into ``batch`` (up to max_coalesce).

        With a positive ``coalesce_window`` the dispatcher also lingers for
        up to that many seconds so near-simultaneous requests have a chance
        to arrive — trading a bounded latency bump for bigger dispatches.
        """
        deadline = time.monotonic() + self.config.coalesce_window
        with self._queue_cv:
            self._take_matches_locked(batch)
            while (
                self.config.coalesce_window > 0
                and len(batch) < self.config.max_coalesce
                and not self._draining
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._queue_cv.wait(timeout=remaining)
                self._take_matches_locked(batch)

    def _take_matches_locked(self, batch: List[_Request]) -> None:
        if len(batch) >= self.config.max_coalesce:
            return
        key = batch[0].key
        now = time.monotonic()
        kept: deque = deque()
        expired: List[_Request] = []
        for queued in self._queue:
            if len(batch) < self.config.max_coalesce and queued.key == key:
                if queued.expired(now):
                    expired.append(queued)
                else:
                    batch.append(queued)
            else:
                kept.append(queued)
        self._queue.clear()
        self._queue.extend(kept)
        for request in expired:
            self._reject_expired(request, locked=True)

    def _reject_expired(self, request: _Request, locked: bool = False) -> None:
        if locked:
            self._counters["rejected_deadline"] += 1
        else:
            with self._lock:
                self._counters["rejected_deadline"] += 1
        request.conn.send(
            protocol.error_payload(
                request.msg_id,
                "deadline_exceeded",
                "deadline expired while queued",
            )
        )

    def _dispatch(self, batch: List[_Request]) -> None:
        if batch[0].key[0] == "compile":
            self._dispatch_compile(batch)
        else:
            self._dispatch_run(batch)

    def _dispatch_compile(self, batch: List[_Request]) -> None:
        head = batch[0]
        try:
            model = self.session.compile_model(
                head.composition,
                pipeline=head.pipeline,
                seed=head.compile_seed,
                flags=head.flags,
            )
        except Exception as exc:  # noqa: BLE001 - mapped to a wire error
            self._fail_batch(batch, exc, retried=False)
            return
        stats = model.stats
        payload = {
            "pipeline": head.pipeline,
            "target": head.target,
            "compile_seconds": stats.total_seconds,
            "artifacts": {
                "hits": stats.artifact_hits,
                "misses": stats.artifact_misses,
                "writes": stats.artifact_writes,
            },
        }
        self._complete_batch(batch, lambda request, span: {"compile": payload})

    def _dispatch_run(self, batch: List[_Request]) -> None:
        head = batch[0]
        inputs_batch = [inputs for request in batch for inputs, _, _ in request.elements]
        trials_list = [trials for request in batch for _, trials, _ in request.elements]
        seeds = [seed for request in batch for _, _, seed in request.elements]

        def dispatch() -> List:
            instance = self.session.compile(
                head.composition,
                target=head.target,
                pipeline=head.pipeline,
                seed=head.compile_seed,
                flags=head.flags,
            )
            return instance.run_batch(
                inputs_batch, num_trials=trials_list, seed=seeds, **head.options
            )

        try:
            results = self._call_with_watchdog(dispatch)
        except _TRANSIENT:
            with self._lock:
                self._counters["retries"] += 1
            self._reset_engine(head)
            try:
                results = self._call_with_watchdog(dispatch)
            except Exception as exc:  # noqa: BLE001 - mapped to a wire error
                self._fail_batch(batch, exc, retried=True)
                return
        except Exception as exc:  # noqa: BLE001 - mapped to a wire error
            self._fail_batch(batch, exc, retried=False)
            return

        coalesced = len(batch)
        wires = [protocol.results_to_wire(result) for result in results]
        offset = 0
        spans: List[Tuple[int, int]] = []
        for request in batch:
            spans.append((offset, offset + len(request.elements)))
            offset += len(request.elements)

        def build(request: _Request, span: Tuple[int, int]) -> Dict[str, object]:
            lo, hi = span
            if request.op == "run":
                return {"results": wires[lo], "coalesced": coalesced}
            return {"results": wires[lo:hi], "coalesced": coalesced}

        self._complete_batch(batch, build, spans=spans)

    def _complete_batch(
        self,
        batch: List[_Request],
        build: Callable[[_Request, Optional[Tuple[int, int]]], Dict[str, object]],
        spans: Optional[List[Tuple[int, int]]] = None,
    ) -> None:
        now = time.monotonic()
        # Counters update BEFORE the responses go out so a client that reads
        # ``stats`` right after its response sees its own request counted.
        with self._lock:
            self._counters["completed"] += len(batch)
            self._counters["dispatches"] += 1
            if len(batch) > 1:
                self._counters["coalesced_requests"] += len(batch)
            if len(batch) > self._counters["max_batch"]:
                self._counters["max_batch"] = len(batch)
            for request in batch:
                self._latencies.append((now - request.arrived) * 1000.0)
        dropped = 0
        for index, request in enumerate(batch):
            fields = build(request, spans[index] if spans else None)
            if not request.conn.send(protocol.ok_payload(request.msg_id, **fields)):
                dropped += 1
        if dropped:
            with self._lock:
                self._counters["dropped_responses"] += dropped

    def _fail_batch(self, batch: List[_Request], exc: Exception, retried: bool) -> None:
        if isinstance(exc, (CompilationError, ModelStructureError)):
            code = "compile_error"
        elif isinstance(exc, (ValueError, TypeError, KeyError)):
            code = "bad_request"
        elif isinstance(exc, _TRANSIENT + (EngineError,)):
            code = "engine_error"
        else:
            code = "internal"
        message = f"{type(exc).__name__}: {exc}"
        if retried:
            message += " (after one retry against a reset engine binding)"
        with self._lock:
            self._counters["failed"] += len(batch)
            self._counters["dispatches"] += 1
        for request in batch:
            request.conn.send(protocol.error_payload(request.msg_id, code, message))

    def _reset_engine(self, request: _Request) -> None:
        """Drop the (suspected-dead) engine binding so the retry rebinds.

        ``reset_engine`` hard-terminates multicore pools — a graceful
        ``close`` would join the pool's result handler, which never returns
        while a killed worker's task is lost.
        """
        try:
            model = self.session.compile_model(
                request.composition,
                pipeline=request.pipeline,
                seed=request.compile_seed,
                flags=request.flags,
            )
            model.reset_engine(request.target)
        except Exception:  # noqa: BLE001 - reset is best-effort
            pass

    def _call_with_watchdog(self, fn: Callable[[], List]) -> List:
        timeout = self.config.dispatch_timeout
        if timeout is None:
            return fn()
        box: Dict[str, object] = {}
        done = threading.Event()

        def runner() -> None:
            try:
                box["value"] = fn()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                box["error"] = exc
            finally:
                done.set()

        thread = threading.Thread(
            target=runner, name="repro-serve-watchdog", daemon=True
        )
        thread.start()
        if not done.wait(timeout):
            # The stuck thread is abandoned (daemon); its pool is about to
            # be terminated by the retry path, which unsticks or kills it.
            raise DispatchTimeout(f"engine dispatch exceeded {timeout:.1f}s")
        if "error" in box:
            raise box["error"]
        return box["value"]

    # -- stats -------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Operational counters: queue, coalescing, caches, latency tails."""
        with self._lock:
            counters = dict(self._counters)
            depth = len(self._queue)
            latencies = sorted(self._latencies)
            draining = self._draining
        completed = counters["completed"]
        latency: Dict[str, object] = {"count": len(latencies)}
        if latencies:
            def percentile(q: float) -> float:
                return latencies[min(len(latencies) - 1, int(q * (len(latencies) - 1) + 0.5))]

            latency.update(
                p50_ms=percentile(0.50),
                p90_ms=percentile(0.90),
                p99_ms=percentile(0.99),
                max_ms=latencies[-1],
                mean_ms=sum(latencies) / len(latencies),
            )
        return {
            "queue_depth": depth,
            "max_queue": self.config.max_queue,
            "draining": draining,
            "uptime_seconds": time.monotonic() - self._started,
            "requests": {
                key: counters[key]
                for key in (
                    "admitted",
                    "completed",
                    "failed",
                    "retries",
                    "rejected_busy",
                    "rejected_deadline",
                    "rejected_draining",
                    "dropped_responses",
                )
            },
            "coalesce": {
                "dispatches": counters["dispatches"],
                "coalesced_requests": counters["coalesced_requests"],
                "max_batch": counters["max_batch"],
                "rate": (counters["coalesced_requests"] / completed) if completed else 0.0,
            },
            "session": self.session.cache_info(),
            "artifacts": self.store.counters() if self.store is not None else None,
            # On-disk tuned-pipeline entries + this process's lookup counters;
            # the session's own "tuned" sub-dict (above) counts pipeline="auto"
            # resolutions, this one counts store-level entries/traffic.
            "tuned_pipelines": (
                self.store.tuned_stats() if self.store is not None else None
            ),
            "latency_ms": latency,
        }
