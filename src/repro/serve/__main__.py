"""CLI entry point: ``python -m repro.serve --socket /tmp/repro.sock``.

Boots a :class:`~repro.serve.server.Server`, installs SIGTERM/SIGINT
handlers that drain in-flight work before exit, and prints a ready line
(``repro-serve: listening on ...``) that boot-wait loops can look for.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys

from .server import ServeConfig, Server


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serving daemon: warm compile cache + coalescing dispatch.",
    )
    where = parser.add_mutually_exclusive_group(required=True)
    where.add_argument("--socket", help="AF_UNIX socket path to listen on")
    where.add_argument("--host", help="TCP host to listen on (with --port)")
    parser.add_argument("--port", type=int, default=0, help="TCP port (0 = ephemeral)")
    parser.add_argument(
        "--artifact-dir",
        default=None,
        help="artifact store root (default: $REPRO_ARTIFACT_DIR; 'off' disables)",
    )
    parser.add_argument("--max-queue", type=int, default=64)
    parser.add_argument("--max-coalesce", type=int, default=32)
    parser.add_argument(
        "--coalesce-window-ms",
        type=float,
        default=0.0,
        help="linger this long after popping a request to grow the batch",
    )
    parser.add_argument("--dispatch-timeout", type=float, default=60.0)
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="default per-request deadline (requests may override)",
    )
    parser.add_argument("--target", default="compiled", help="default engine target")
    parser.add_argument("--pipeline", default="default<O2>", help="default pipeline")
    parser.add_argument(
        "--final-stats",
        action="store_true",
        help="print the stats payload as JSON on clean shutdown",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    address = args.socket if args.socket else (args.host, args.port)
    artifact_dir = False if args.artifact_dir == "off" else args.artifact_dir
    config = ServeConfig(
        max_queue=args.max_queue,
        max_coalesce=args.max_coalesce,
        coalesce_window=args.coalesce_window_ms / 1000.0,
        dispatch_timeout=args.dispatch_timeout,
        default_deadline=None if args.deadline_ms is None else args.deadline_ms / 1000.0,
        default_target=args.target,
        default_pipeline=args.pipeline,
    )
    server = Server(address, artifact_dir=artifact_dir, config=config)

    def handle_signal(_signum, _frame):
        server.request_shutdown()

    # Handlers go in BEFORE the listener: a boot-wait loop's successful ping
    # must imply SIGTERM already drains instead of hard-killing the process.
    signal.signal(signal.SIGTERM, handle_signal)
    signal.signal(signal.SIGINT, handle_signal)
    server.start()

    shown = server.address if isinstance(server.address, str) else "%s:%d" % tuple(server.address)
    print(f"repro-serve: listening on {shown}", flush=True)
    try:
        server.serve_forever()
    finally:
        if args.final_stats:
            print(json.dumps(server.stats(), sort_keys=True), flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
