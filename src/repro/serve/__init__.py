"""Serving daemon: a coalescing request front-end over warm sessions.

``python -m repro.serve --socket /tmp/repro.sock`` boots the daemon; see
:mod:`repro.serve.server` for the admission/coalescing/drain contracts and
:mod:`repro.serve.client` for the synchronous client.
"""

from .client import ServeClient, wait_for_server
from .server import DispatchTimeout, ServeConfig, Server

__all__ = [
    "DispatchTimeout",
    "ServeClient",
    "ServeConfig",
    "Server",
    "wait_for_server",
]
