"""Necker-cube bistable perception models (paper §5, "Necker cube").

The model simulates the perception of a bi-stable stimulus: each vertex of
the line drawing is represented by a leaky-integrating node receiving
excitation from vertices of the same interpretation and inhibition from the
competing interpretation; over passes the node activities oscillate between
the two percepts.

Three variants match the paper's:

* ``necker_cube_s``  — 3 vertices (the small line drawing),
* ``necker_cube_m``  — 8 vertices (the full cube),
* ``vectorized_necker_cube`` — a hand-vectorised version of the 8-vertex
  model: a single mechanism holding the whole state vector and applying the
  coupling as one weight matrix.  The paper's clone detection proves this
  equivalent to ``necker_cube_m`` at the IR level.
"""

from __future__ import annotations

import numpy as np

from ..cogframe import (
    AfterNPasses,
    Composition,
    IntegratorMechanism,
    ProcessingMechanism,
)
from ..cogframe.functions import LeakyIntegrator, Linear


def coupling_matrix(num_vertices: int, excitation: float = 0.4, inhibition: float = -0.6) -> np.ndarray:
    """Coupling between vertices: cooperative within a percept, competitive across.

    Vertices are split into two interpretation groups (even/odd indices);
    same-group pairs excite each other, cross-group pairs inhibit.
    """
    matrix = np.zeros((num_vertices, num_vertices))
    for i in range(num_vertices):
        for j in range(num_vertices):
            if i == j:
                continue
            same_group = (i % 2) == (j % 2)
            matrix[i, j] = excitation if same_group else inhibition
    return matrix


def build_necker_cube(
    num_vertices: int = 8,
    passes: int = 60,
    noise: float = 0.05,
    name: str | None = None,
) -> Composition:
    """Per-vertex formulation: one leaky-integrator node per vertex."""
    name = name or f"necker_cube_{num_vertices}v"
    comp = Composition(name)
    matrix = coupling_matrix(num_vertices)

    stimulus = ProcessingMechanism("stimulus", Linear(), size=num_vertices)
    comp.add_node(stimulus, is_input=True)

    vertex_nodes = []
    for v in range(num_vertices):
        node = IntegratorMechanism(
            f"vertex_{v}",
            LeakyIntegrator(rate=1.0, leak=0.4, noise=noise, time_step=0.1, initializer=0.1),
            size=1,
        )
        comp.add_node(node, is_output=True, monitor=True)
        vertex_nodes.append(node)
        # Stimulus drive for this vertex.
        selector = np.zeros((1, num_vertices))
        selector[0, v] = 1.0
        comp.add_projection(stimulus, node, matrix=selector)

    # Recurrent coupling between vertices.
    for i in range(num_vertices):
        for j in range(num_vertices):
            if i == j or matrix[i, j] == 0.0:
                continue
            comp.add_projection(vertex_nodes[j], vertex_nodes[i], matrix=np.array([[matrix[i, j]]]))

    comp.set_termination(AfterNPasses(passes), max_passes=passes)
    return comp


def build_vectorized_necker_cube(
    num_vertices: int = 8,
    passes: int = 60,
    noise: float = 0.05,
) -> Composition:
    """Hand-vectorised formulation: one node holding the full state vector.

    The per-vertex nodes collapse into a single integrator of size
    ``num_vertices`` whose drive is ``stimulus + W @ previous_state``,
    delivered through an identity projection from the stimulus node plus a
    recurrent self-projection carrying the coupling matrix.  Pass-for-pass
    the dynamics are identical to :func:`build_necker_cube`, which is what
    the paper's whole-model clone detection establishes.
    """
    comp = Composition(f"vectorized_necker_cube_{num_vertices}v")
    matrix = coupling_matrix(num_vertices)

    stimulus = ProcessingMechanism("stimulus", Linear(), size=num_vertices)
    comp.add_node(stimulus, is_input=True)

    vertices = IntegratorMechanism(
        "vertices",
        LeakyIntegrator(rate=1.0, leak=0.4, noise=noise, time_step=0.1, initializer=0.1),
        size=num_vertices,
    )
    comp.add_node(vertices, is_output=True, monitor=True)

    comp.add_projection(stimulus, vertices)
    comp.add_projection(vertices, vertices, matrix=matrix)

    comp.set_termination(AfterNPasses(passes), max_passes=passes)
    return comp


def build_necker_cube_s(passes: int = 60) -> Composition:
    """The 3-vertex variant (``necker cube S`` in Figure 4)."""
    return build_necker_cube(num_vertices=3, passes=passes, name="necker_cube_s")


def build_necker_cube_m(passes: int = 60) -> Composition:
    """The 8-vertex variant (``necker cube M`` in Figure 4)."""
    return build_necker_cube(num_vertices=8, passes=passes, name="necker_cube_m")


def default_inputs(num_vertices: int = 8, num_inputs: int = 1) -> list:
    """Constant ambiguous stimulus: equal drive to every vertex."""
    return [{"stimulus": np.full(num_vertices, 1.0)} for _ in range(num_inputs)]
