"""The Multitasking model: a heterogeneous PyTorch + PsyNeuLink model.

The model (paper §5, "Multitasking") processes a combined stimulus/goal input
with a neural network designed in (mini)torch that produces evidence for the
colour and shape features; that evidence drives a Leaky Competing Accumulator
designed in the cognitive-modelling framework, which accumulates until one
unit crosses a decision threshold.  The model is run for many trials to build
a distribution of response times and a histogram of correct/incorrect
responses.

PyPy and Pyston cannot run this model at all (no PyTorch support); Distill
compiles the network and the LCA into one IR module so that optimisation
crosses the framework boundary.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..cogframe import (
    AfterNPasses,
    Any,
    Composition,
    IntegratorMechanism,
    ProcessingMechanism,
    ThresholdCrossed,
)
from ..cogframe.functions import LeakyCompetingIntegrator, Linear
from ..minitorch import NeuralNetworkFunction, nn

#: Input layout: 2 colour units, 2 shape units, 2 task (goal) units.
INPUT_SIZE = 6
HIDDEN_SIZE = 8
OUTPUT_SIZE = 4  # evidence for (red, green, circle, square)


def build_pretrained_network(seed: int = 3) -> nn.Sequential:
    """A small pre-trained feature network (stand-in for the PyTorch model).

    The weights are constructed (rather than trained here) so that the network
    routes the stimulus feature selected by the task units to the output
    evidence, with a small amount of crosstalk — the representational-conflict
    structure the Multitasking model studies.
    """
    network = nn.Sequential(
        nn.Linear(INPUT_SIZE, HIDDEN_SIZE, seed=seed),
        nn.ReLU(),
        nn.Linear(HIDDEN_SIZE, OUTPUT_SIZE, seed=seed + 1),
        nn.Sigmoid(),
    )
    first: nn.Linear = network.modules[0]
    second: nn.Linear = network.modules[2]

    weight1 = np.zeros((HIDDEN_SIZE, INPUT_SIZE))
    # Colour channel: hidden 0..1 copy colour units gated by task unit 0.
    weight1[0, 0] = 2.0
    weight1[1, 1] = 2.0
    weight1[0, 4] = 1.0
    weight1[1, 4] = 1.0
    # Shape channel: hidden 2..3 copy shape units gated by task unit 1.
    weight1[2, 2] = 2.0
    weight1[3, 3] = 2.0
    weight1[2, 5] = 1.0
    weight1[3, 5] = 1.0
    # Crosstalk channels.
    weight1[4, 0] = 0.3
    weight1[4, 2] = 0.3
    weight1[5, 1] = 0.3
    weight1[5, 3] = 0.3
    first.set_weights(weight1, np.full(HIDDEN_SIZE, -0.5))

    weight2 = np.zeros((OUTPUT_SIZE, HIDDEN_SIZE))
    weight2[0, 0] = 2.0
    weight2[1, 1] = 2.0
    weight2[2, 2] = 2.0
    weight2[3, 3] = 2.0
    weight2[0, 4] = 0.4
    weight2[2, 4] = 0.4
    weight2[1, 5] = 0.4
    weight2[3, 5] = 0.4
    second.set_weights(weight2, np.full(OUTPUT_SIZE, -1.0))
    return network


def build_multitasking(
    max_cycles: int = 200,
    threshold: float = 1.0,
    noise: float = 0.1,
    network: nn.Sequential | None = None,
) -> Composition:
    """Build the heterogeneous Multitasking composition."""
    comp = Composition("multitasking")
    network = network or build_pretrained_network()

    stimulus = ProcessingMechanism("stimulus", Linear(), size=INPUT_SIZE)
    comp.add_node(stimulus, is_input=True)

    feature_net = ProcessingMechanism(
        "feature_net", NeuralNetworkFunction(network), size=INPUT_SIZE
    )
    comp.add_node(feature_net)

    decision = IntegratorMechanism(
        "decision",
        LeakyCompetingIntegrator(
            leak=0.2, competition=0.3, noise=noise, time_step=0.1, non_negative=1.0
        ),
        size=OUTPUT_SIZE,
    )
    comp.add_node(decision, is_output=True, monitor=True)

    comp.add_projection(stimulus, feature_net)
    comp.add_projection(feature_net, decision)

    comp.set_termination(
        Any(
            ThresholdCrossed("decision", threshold, comparator=">=", statistic="max"),
            AfterNPasses(max_cycles),
        ),
        max_passes=max_cycles,
    )
    return comp


def default_inputs(num_inputs: int = 8, seed: int = 11) -> List[dict]:
    """Stimulus/goal combinations: one colour + one shape + the colour task."""
    rng = np.random.default_rng(seed)
    inputs = []
    for _ in range(num_inputs):
        color = rng.integers(0, 2)
        shape = rng.integers(0, 2)
        stimulus = np.zeros(INPUT_SIZE)
        stimulus[color] = 1.0
        stimulus[2 + shape] = 1.0
        stimulus[4] = 1.0  # colour-naming goal
        inputs.append({"stimulus": stimulus})
    return inputs


def correct_response_index(stimulus: np.ndarray) -> int:
    """The evidence unit a correct colour-task response should select."""
    return int(np.argmax(stimulus[0:2]))


def summarize_decisions(results, inputs: List[dict]) -> Dict[str, object]:
    """Response-time distribution and correct/incorrect histogram."""
    response_times = []
    correct = 0
    for index, trial in enumerate(results.trials):
        final = trial.outputs["decision"]
        choice = int(np.argmax(final))
        stimulus = np.asarray(inputs[index % len(inputs)]["stimulus"])
        if choice == correct_response_index(stimulus):
            correct += 1
        response_times.append(trial.passes)
    total = len(results.trials)
    return {
        "response_times": response_times,
        "mean_rt": float(np.mean(response_times)) if response_times else 0.0,
        "correct": correct,
        "incorrect": total - correct,
        "accuracy": correct / total if total else 0.0,
    }
