"""The predator-prey attention-allocation model (paper §2.1 and Figure 1).

An agent controls a player on a screen showing a prey (to capture) and a
predator (to avoid).  Attention is limited: the Control node searches over
allocations of attention to the three entities, each allocation determining
the variance of the Gaussian observation of that entity's location; the Obs
nodes sample observed locations; the Action node computes a move from them;
the Objective node scores the move against the true locations; Control picks
the allocation with the lowest cost.

The four paper variants differ only in the number of attention levels per
entity: S=2, M=4, L=6 and XL=100, i.e. 8, 64, 216 and 1,000,000 evaluations
of the pipeline per controller execution.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..cogframe import (
    AfterNPasses,
    Composition,
    GridSearchControlMechanism,
    InputPort,
    ObjectiveMechanism,
    ProcessingMechanism,
    SimulationStep,
)
from ..cogframe.functions import (
    AttentionModulatedObservation,
    Linear,
    PredatorPreyObjective,
    PursuitAvoidanceAction,
)

#: Attention levels per entity for the four paper variants.
VARIANT_LEVELS: Dict[str, int] = {"s": 2, "m": 4, "l": 6, "xl": 100}


def attention_levels(count: int, low: float = 0.0, high: float = 5.0) -> List[float]:
    """Evenly spaced candidate attention levels in ``[low, high]``."""
    if count == 1:
        return [high]
    return list(np.linspace(low, high, count))


def build_predator_prey(
    variant: str = "s",
    passes: int = 2,
    levels_per_entity: int | None = None,
    base_std: float = 2.0,
    attention_cost: float = 0.05,
) -> Composition:
    """Build a predator-prey composition.

    Parameters
    ----------
    variant:
        One of ``"s"``, ``"m"``, ``"l"``, ``"xl"`` (2/4/6/100 attention levels
        per entity) — or pass ``levels_per_entity`` explicitly.
    passes:
        Scheduler passes per trial (each pass performs a full grid search and
        a move; 2 passes let the chosen allocation propagate to the Obs and
        Action nodes, mirroring one full decision cycle).
    """
    if levels_per_entity is None:
        key = variant.lower()
        if key not in VARIANT_LEVELS:
            raise ValueError(f"unknown predator-prey variant {variant!r}")
        levels_per_entity = VARIANT_LEVELS[key]
    comp = Composition(f"predator_prey_{variant.lower()}")

    # -- input nodes: true 2-D locations of the three entities -------------------
    player = ProcessingMechanism("player_loc", Linear(), size=2)
    predator = ProcessingMechanism("predator_loc", Linear(), size=2)
    prey = ProcessingMechanism("prey_loc", Linear(), size=2)
    for node in (player, predator, prey):
        comp.add_node(node, is_input=True)

    # -- mechanisms reused by the control simulation pipeline ----------------------
    obs_player = ProcessingMechanism(
        "obs_player",
        AttentionModulatedObservation(base_std=base_std),
        input_ports=[InputPort("location", 2), InputPort("attention", 1)],
    )
    obs_predator = ProcessingMechanism(
        "obs_predator",
        AttentionModulatedObservation(base_std=base_std),
        input_ports=[InputPort("location", 2), InputPort("attention", 1)],
    )
    obs_prey = ProcessingMechanism(
        "obs_prey",
        AttentionModulatedObservation(base_std=base_std),
        input_ports=[InputPort("location", 2), InputPort("attention", 1)],
    )
    action = ProcessingMechanism(
        "action",
        PursuitAvoidanceAction(),
        input_ports=[
            InputPort("player", 2),
            InputPort("predator", 2),
            InputPort("prey", 2),
        ],
    )
    objective = ObjectiveMechanism(
        "objective",
        PredatorPreyObjective(attention_cost=attention_cost),
        input_ports=[
            InputPort("action", 2),
            InputPort("player", 2),
            InputPort("predator", 2),
            InputPort("prey", 2),
            InputPort("allocation", 3),
        ],
    )

    # -- the grid-search controller -----------------------------------------------------
    levels = attention_levels(levels_per_entity)
    # The controller observes the exact locations: player (0:2), predator
    # (2:4), prey (4:6) — the simulation pipeline mirrors the real pathway.
    control = GridSearchControlMechanism(
        "control",
        input_size=6,
        levels=[levels, levels, levels],
        steps=[
            SimulationStep(obs_player, [("input", 0, 2), ("allocation", 0)]),
            SimulationStep(obs_predator, [("input", 2, 2), ("allocation", 1)]),
            SimulationStep(obs_prey, [("input", 4, 2), ("allocation", 2)]),
            SimulationStep(
                action,
                [("step", "obs_player"), ("step", "obs_predator"), ("step", "obs_prey")],
            ),
            SimulationStep(
                objective,
                [
                    ("step", "action"),
                    ("input", 0, 2),
                    ("input", 2, 2),
                    ("input", 4, 2),
                    ("allocation", -1),
                ],
            ),
        ],
        objective_step="objective",
    )
    comp.add_node(control, is_output=True)
    comp.add_node(obs_player)
    comp.add_node(obs_predator)
    comp.add_node(obs_prey)
    comp.add_node(action, is_output=True)
    comp.add_node(objective, is_output=True)

    # -- wiring of the "real" pathway (Figure 1) -------------------------------------------
    comp.add_projection(player, control, sender_slice=(0, 2), matrix=_block(0, 2, 6))
    comp.add_projection(predator, control, sender_slice=(0, 2), matrix=_block(2, 2, 6))
    comp.add_projection(prey, control, sender_slice=(0, 2), matrix=_block(4, 2, 6))

    comp.add_projection(player, obs_player, port="location")
    comp.add_projection(predator, obs_predator, port="location")
    comp.add_projection(prey, obs_prey, port="location")
    comp.add_projection(control, obs_player, port="attention", sender_slice=(0, 1))
    comp.add_projection(control, obs_predator, port="attention", sender_slice=(1, 1))
    comp.add_projection(control, obs_prey, port="attention", sender_slice=(2, 1))

    comp.add_projection(obs_player, action, port="player")
    comp.add_projection(obs_predator, action, port="predator")
    comp.add_projection(obs_prey, action, port="prey")

    comp.add_projection(action, objective, port="action")
    comp.add_projection(player, objective, port="player")
    comp.add_projection(predator, objective, port="predator")
    comp.add_projection(prey, objective, port="prey")
    comp.add_projection(control, objective, port="allocation")

    comp.set_termination(AfterNPasses(passes), max_passes=passes)
    return comp


def _block(row_offset: int, size: int, total_rows: int) -> np.ndarray:
    """A ``total_rows x size`` matrix placing a ``size`` vector at ``row_offset``."""
    matrix = np.zeros((total_rows, size))
    for i in range(size):
        matrix[row_offset + i, i] = 1.0
    return matrix


def default_inputs(num_inputs: int = 1, seed: int = 7) -> list:
    """Plausible screen positions for the three entities."""
    rng = np.random.default_rng(seed)
    inputs = []
    for _ in range(num_inputs):
        inputs.append(
            {
                "player_loc": rng.uniform(-5, 5, size=2),
                "predator_loc": rng.uniform(-5, 5, size=2),
                "prey_loc": rng.uniform(-5, 5, size=2),
            }
        )
    return inputs
