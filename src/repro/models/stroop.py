"""Botvinick Stroop conflict-monitoring model and its extended variants.

The Botvinick et al. (2001) model simulates the conflict between naming the
ink colour of a word and reading the word itself.  Colour and word pathways
(each two units) feed a response layer through fixed weights; a task-demand
layer biases one pathway; the response layer accumulates evidence over many
settling cycles; "decision energy" — the product of the two response units —
indexes the conflict and is recorded on every cycle.

Two extended variants (paper §5, "Extended Stroop A/B") add a second task
(finger pointing) by feeding two drift-diffusion decision units from the
response layer and combining them into an overall reward.  A and B are
*structured* differently but compute the same thing; Distill's clone
detection establishes their equivalence.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..cogframe import (
    AfterNPasses,
    Composition,
    InputPort,
    IntegratorMechanism,
    ObjectiveMechanism,
    ProcessingMechanism,
)
from ..cogframe.functions import (
    DriftDiffusionAnalytical,
    EnergyFunction,
    LeakyIntegrator,
    Linear,
    LinearCombination,
    LinearMatrix,
    Logistic,
)

# Canonical weights of the Botvinick model (colour pathway weaker than word).
COLOR_HIDDEN_WEIGHTS = np.array([[2.2, -2.2], [-2.2, 2.2]])
WORD_HIDDEN_WEIGHTS = np.array([[2.6, -2.6], [-2.6, 2.6]])
TASK_COLOR_WEIGHTS = np.array([[4.0, 0.0], [4.0, 0.0]])
TASK_WORD_WEIGHTS = np.array([[0.0, 4.0], [0.0, 4.0]])
RESPONSE_COLOR_WEIGHTS = np.array([[1.3, 0.0], [0.0, 1.3]])
RESPONSE_WORD_WEIGHTS = np.array([[2.5, 0.0], [0.0, 2.5]])
HIDDEN_BIAS = -4.0
ENERGY_WEIGHT = -2.0


def build_botvinick_stroop(cycles: int = 100, noise: float = 0.0) -> Composition:
    """The base conflict-monitoring model (``Botvinick stroop`` in Figure 4)."""
    comp = Composition("botvinick_stroop")
    _add_stroop_core(comp, cycles=cycles, noise=noise)
    return comp


def _add_stroop_core(comp: Composition, cycles: int, noise: float) -> Dict[str, ProcessingMechanism]:
    color_input = ProcessingMechanism("color_input", Linear(), size=2)
    word_input = ProcessingMechanism("word_input", Linear(), size=2)
    task_input = ProcessingMechanism("task_input", Linear(), size=2)
    for node in (color_input, word_input, task_input):
        comp.add_node(node, is_input=True)

    # Hidden units receive the summed drive of their stimulus pathway and the
    # task-demand bias through two projections converging on the same port.
    color_hidden = ProcessingMechanism(
        "color_hidden", Logistic(gain=1.0, bias=-HIDDEN_BIAS), size=2
    )
    word_hidden = ProcessingMechanism(
        "word_hidden", Logistic(gain=1.0, bias=-HIDDEN_BIAS), size=2
    )
    comp.add_node(color_hidden)
    comp.add_node(word_hidden)

    response = IntegratorMechanism(
        "response",
        LeakyIntegrator(rate=1.0, leak=0.8, noise=noise, time_step=0.1, initializer=0.0),
        size=2,
    )
    comp.add_node(response, is_output=True, monitor=True)

    energy = ObjectiveMechanism("energy", EnergyFunction(weight=ENERGY_WEIGHT), size=2)
    comp.add_node(energy, is_output=True, monitor=True)

    comp.add_projection(color_input, color_hidden, matrix=COLOR_HIDDEN_WEIGHTS)
    comp.add_projection(task_input, color_hidden, matrix=TASK_COLOR_WEIGHTS)
    comp.add_projection(word_input, word_hidden, matrix=WORD_HIDDEN_WEIGHTS)
    comp.add_projection(task_input, word_hidden, matrix=TASK_WORD_WEIGHTS)
    comp.add_projection(color_hidden, response, matrix=RESPONSE_COLOR_WEIGHTS)
    comp.add_projection(word_hidden, response, matrix=RESPONSE_WORD_WEIGHTS)
    comp.add_projection(response, energy)

    comp.set_termination(AfterNPasses(cycles), max_passes=cycles)
    return {
        "color_input": color_input,
        "word_input": word_input,
        "task_input": task_input,
        "response": response,
        "energy": energy,
    }


def build_extended_stroop(variant: str = "a", cycles: int = 100, noise: float = 0.0) -> Composition:
    """Extended Stroop with a finger-pointing task (variants ``a`` and ``b``).

    Both variants add two analytical DDM decision units — one for colour
    naming, one for finger pointing — driven by the response-layer difference,
    and combine their outputs into an overall reward.  Variant A feeds the
    DDMs the difference ``response[0] - response[1]`` and averages the two
    response times; variant B feeds the *negated reversed* difference
    ``-(response[1] - response[0])`` through an extra identity node and sums
    the response times with weights 0.5 — conceptually organised differently
    but computationally identical, which Distill's clone detection reports.
    """
    variant = variant.lower()
    if variant not in ("a", "b"):
        raise ValueError("extended Stroop variant must be 'a' or 'b'")
    comp = Composition(f"extended_stroop_{variant}")
    nodes = _add_stroop_core(comp, cycles=cycles, noise=noise)
    response = nodes["response"]

    ddm_color = ProcessingMechanism("ddm_color", DriftDiffusionAnalytical(), size=1)
    ddm_pointing = ProcessingMechanism(
        "ddm_pointing", DriftDiffusionAnalytical(drift_rate=0.8), size=1
    )
    comp.add_node(ddm_color, is_output=True)
    comp.add_node(ddm_pointing, is_output=True)

    if variant == "a":
        # The response-layer difference is computed by a single projection
        # matrix, and the reward averages the two response times directly.
        difference = np.array([[1.0, -1.0]])
        comp.add_projection(response, ddm_color, matrix=difference)
        comp.add_projection(response, ddm_pointing, matrix=difference)
        reward = ObjectiveMechanism(
            "reward",
            LinearCombination(weights=[0.5, 0.0, 0.5, 0.0]),
            input_ports=[InputPort("color", 2), InputPort("pointing", 2)],
        )
        comp.add_node(reward, is_output=True)
        comp.add_projection(ddm_color, reward, port="color")
        comp.add_projection(ddm_pointing, reward, port="pointing")
    else:
        # Variant B is organised differently: the DDM drive arrives through
        # two separate projections (the inhibitory one wired first), and the
        # averaging is split between halved projection weights into the reward
        # node and unit combination weights.  Computationally this is the same
        # model as variant A — the equivalence Distill's clone detection
        # establishes after whole-model inlining and simplification.
        inhibit = np.array([[0.0, -1.0]])
        excite = np.array([[1.0, 0.0]])
        comp.add_projection(response, ddm_color, matrix=inhibit)
        comp.add_projection(response, ddm_color, matrix=excite)
        comp.add_projection(response, ddm_pointing, matrix=inhibit)
        comp.add_projection(response, ddm_pointing, matrix=excite)
        reward = ObjectiveMechanism(
            "reward",
            LinearCombination(weights=[1.0, 0.0, 1.0, 0.0]),
            input_ports=[InputPort("color", 2), InputPort("pointing", 2)],
        )
        comp.add_node(reward, is_output=True)
        half = np.array([[0.5, 0.0], [0.0, 0.5]])
        comp.add_projection(ddm_color, reward, port="color", matrix=half)
        comp.add_projection(ddm_pointing, reward, port="pointing", matrix=half)

    comp.set_termination(AfterNPasses(cycles), max_passes=cycles)
    return comp


def default_inputs(condition: str = "incongruent", num_inputs: int = 1) -> List[dict]:
    """Standard Stroop stimuli.

    ``congruent``   — the word matches the ink colour.
    ``incongruent`` — the word names the other colour (maximal conflict).
    ``control``     — colour naming with a neutral word.
    """
    if condition == "congruent":
        color, word = [1.0, 0.0], [1.0, 0.0]
    elif condition == "incongruent":
        color, word = [1.0, 0.0], [0.0, 1.0]
    elif condition == "control":
        color, word = [1.0, 0.0], [0.0, 0.0]
    else:
        raise ValueError(f"unknown Stroop condition {condition!r}")
    task = [1.0, 0.0]  # colour-naming task
    return [
        {"color_input": color, "word_input": word, "task_input": task}
        for _ in range(num_inputs)
    ]
