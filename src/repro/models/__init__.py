"""repro.models — the cognitive models evaluated in the paper.

* :mod:`repro.models.necker` — Necker-cube bistable perception (S, M and a
  hand-vectorised variant).
* :mod:`repro.models.predator_prey` — the attention-allocation predator-prey
  task (S/M/L/XL grid sizes).
* :mod:`repro.models.stroop` — the Botvinick conflict-monitoring Stroop model
  and the two extended (finger-pointing) variants.
* :mod:`repro.models.multitasking` — the heterogeneous minitorch + LCA
  multitasking model.
* :mod:`repro.models.registry` — name-indexed registry used by benchmarks and
  examples.
"""

from . import multitasking, necker, predator_prey, stroop
from .registry import FIGURE4_MODELS, MODEL_REGISTRY, ModelEntry, get_model, predator_prey_variant

__all__ = [
    "necker",
    "predator_prey",
    "stroop",
    "multitasking",
    "MODEL_REGISTRY",
    "FIGURE4_MODELS",
    "ModelEntry",
    "get_model",
    "predator_prey_variant",
]
