"""Registry of the evaluated models (the Figure 4 suite and the PP variants).

Each entry bundles a composition builder with a default-input builder and the
trial count used by the benchmark harness, so that every benchmark and
example can obtain a model by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..cogframe import Composition
from . import multitasking, necker, predator_prey, stroop


@dataclass
class ModelEntry:
    """A runnable benchmark model."""

    name: str
    build: Callable[[], Composition]
    inputs: Callable[[], List[dict]]
    num_trials: int
    description: str


def _registry() -> Dict[str, ModelEntry]:
    entries = [
        ModelEntry(
            name="vectorized_necker_cube",
            build=lambda: necker.build_vectorized_necker_cube(num_vertices=8, passes=60),
            inputs=lambda: necker.default_inputs(8),
            num_trials=3,
            description="Hand-vectorised 8-vertex Necker cube (60 settling passes).",
        ),
        ModelEntry(
            name="necker_cube_s",
            build=lambda: necker.build_necker_cube_s(passes=60),
            inputs=lambda: necker.default_inputs(3),
            num_trials=3,
            description="3-vertex Necker cube model.",
        ),
        ModelEntry(
            name="necker_cube_m",
            build=lambda: necker.build_necker_cube_m(passes=60),
            inputs=lambda: necker.default_inputs(8),
            num_trials=3,
            description="8-vertex Necker cube model.",
        ),
        ModelEntry(
            name="predator_prey_s",
            build=lambda: predator_prey.build_predator_prey("s"),
            inputs=lambda: predator_prey.default_inputs(2),
            num_trials=2,
            description="Predator-prey with 2 attention levels per entity (8 evaluations).",
        ),
        ModelEntry(
            name="botvinick_stroop",
            build=lambda: stroop.build_botvinick_stroop(cycles=100),
            inputs=lambda: stroop.default_inputs("incongruent"),
            num_trials=3,
            description="Botvinick conflict-monitoring Stroop model (100 cycles).",
        ),
        ModelEntry(
            name="extended_stroop_a",
            build=lambda: stroop.build_extended_stroop("a", cycles=100),
            inputs=lambda: stroop.default_inputs("incongruent"),
            num_trials=3,
            description="Extended Stroop (variant A) with finger-pointing DDMs.",
        ),
        ModelEntry(
            name="extended_stroop_b",
            build=lambda: stroop.build_extended_stroop("b", cycles=100),
            inputs=lambda: stroop.default_inputs("incongruent"),
            num_trials=3,
            description="Extended Stroop (variant B), computationally equivalent to A.",
        ),
        ModelEntry(
            name="multitasking",
            build=lambda: multitasking.build_multitasking(max_cycles=120),
            inputs=lambda: multitasking.default_inputs(4),
            num_trials=8,
            description="Heterogeneous minitorch + LCA multitasking model.",
        ),
    ]
    return {entry.name: entry for entry in entries}


MODEL_REGISTRY: Dict[str, ModelEntry] = _registry()

#: The models plotted in the paper's Figure 4, in plot order.
FIGURE4_MODELS: List[str] = [
    "vectorized_necker_cube",
    "necker_cube_s",
    "necker_cube_m",
    "predator_prey_s",
    "botvinick_stroop",
    "extended_stroop_a",
    "extended_stroop_b",
    "multitasking",
]


def get_model(name: str) -> ModelEntry:
    if name not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[name]


def predator_prey_variant(variant: str) -> ModelEntry:
    """Predator-prey scaling variants (Figure 5a): S, M, L, XL."""
    variant = variant.lower()
    levels = predator_prey.VARIANT_LEVELS[variant]
    return ModelEntry(
        name=f"predator_prey_{variant}",
        build=lambda: predator_prey.build_predator_prey(variant),
        inputs=lambda: predator_prey.default_inputs(1),
        num_trials=1,
        description=f"Predator-prey with {levels} attention levels per entity "
        f"({levels ** 3} evaluations per controller execution).",
    )
