"""Textual pipeline descriptions, LLVM-new-pass-manager style.

Grammar (see DESIGN.md for the full description)::

    pipeline  := entry ("," entry)*
    entry     := alias | pass | repeat | fixpoint
    alias     := NAME "<" VARIANT ">"            e.g.  default<O2>
    pass      := NAME [ "(" params ")" ]         e.g.  inline(threshold=400)
    repeat    := "repeat" "<" INT ">" "(" pipeline ")"
    fixpoint  := "fixpoint" [ "<" INT ">" ] "(" pipeline ")"
    params    := NAME "=" value ("," NAME "=" value)*
    value     := INT | FLOAT | "true" | "false" | NAME

Every pass additionally accepts the reserved parameter ``iterations=N``
(shorthand for wrapping it in ``repeat<N>(...)``), so
``cse(iterations=2)`` runs CSE twice.

:func:`parse_pipeline` builds a :class:`repro.passes.PassManager`;
``PassManager.describe()`` emits the canonical text and the two round-trip
(``parse_pipeline(pm.describe())`` reproduces the same pipeline).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..errors import PipelineParseError
from ..passes.pass_manager import (
    FixpointPass,
    PassManager,
    RepeatPass,
    coerce_verify_policy,
)
from . import registry

__all__ = ["PipelineParseError", "parse_pipeline", "resolve_pipeline"]

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_\-]*")
_INT_RE = re.compile(r"[+-]?\d+\Z")
_FLOAT_RE = re.compile(r"[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?\Z")


def _iter_significant(text: str, context: str) -> Iterator[Tuple[int, str, bool]]:
    """Yield ``(index, char, in_quote)``, tracking quoted string literals.

    Structural characters (commas, brackets) inside a ``'...'``/``"..."``
    literal are not significant; backslash escapes are honoured so quoted
    values round-trip through :func:`repr`.
    """
    quote: Optional[str] = None
    escaped = False
    for index, ch in enumerate(text):
        if quote is not None:
            yield index, ch, True
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == quote:
                quote = None
            continue
        if ch in "'\"":
            quote = ch
        yield index, ch, quote is not None
    if quote is not None:
        raise PipelineParseError(f"unterminated string literal in {context}: {text!r}")


def _split_top_level(text: str, context: str) -> List[str]:
    """Split ``text`` on commas that are not nested in ``()``, ``<>`` or quotes."""
    parts: List[str] = []
    depth_paren = depth_angle = 0
    current: List[str] = []
    for _, ch, in_quote in _iter_significant(text, context):
        if not in_quote:
            if ch == "(":
                depth_paren += 1
            elif ch == ")":
                depth_paren -= 1
                if depth_paren < 0:
                    raise PipelineParseError(f"unbalanced ')' in {context}: {text!r}")
            elif ch == "<":
                depth_angle += 1
            elif ch == ">":
                depth_angle -= 1
                if depth_angle < 0:
                    raise PipelineParseError(f"unbalanced '>' in {context}: {text!r}")
        if ch == "," and not in_quote and depth_paren == 0 and depth_angle == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth_paren != 0:
        raise PipelineParseError(f"unbalanced '(' in {context}: {text!r}")
    if depth_angle != 0:
        raise PipelineParseError(f"unbalanced '<' in {context}: {text!r}")
    parts.append("".join(current))
    return parts


def _parse_value(text: str, entry: str):
    """Parse one parameter value: int, float, bool or bare word."""
    text = text.strip()
    if not text:
        raise PipelineParseError(f"empty parameter value in pipeline entry {entry!r}")
    if text == "true":
        return True
    if text == "false":
        return False
    if _INT_RE.match(text):
        return int(text)
    if _FLOAT_RE.match(text):
        return float(text)
    if text[0] in "'\"":
        try:
            value = ast.literal_eval(text)
        except (SyntaxError, ValueError) as exc:
            raise PipelineParseError(
                f"cannot parse string literal {text!r} in pipeline entry {entry!r}: {exc}"
            ) from exc
        if isinstance(value, str):
            return value
        raise PipelineParseError(
            f"cannot parse parameter value {text!r} in pipeline entry {entry!r}"
        )
    if _NAME_RE.fullmatch(text):
        return text
    raise PipelineParseError(
        f"cannot parse parameter value {text!r} in pipeline entry {entry!r}"
    )


def _parse_params(args: str, entry: str) -> Dict[str, object]:
    params: Dict[str, object] = {}
    if not args.strip():
        return params
    for part in _split_top_level(args, f"parameters of {entry!r}"):
        if "=" not in part:
            raise PipelineParseError(
                f"expected key=value parameter in pipeline entry {entry!r}, got {part.strip()!r}"
            )
        key, _, value = part.partition("=")
        key = key.strip()
        if not _NAME_RE.fullmatch(key):
            raise PipelineParseError(
                f"bad parameter name {key!r} in pipeline entry {entry!r}"
            )
        if key in params:
            raise PipelineParseError(
                f"duplicate parameter {key!r} in pipeline entry {entry!r}"
            )
        params[key] = _parse_value(value, entry)
    return params


def _decompose_entry(entry: str) -> Tuple[str, Optional[str], Optional[str]]:
    """Split one entry into (name, <variant> or None, (args) or None)."""
    text = entry.strip()
    match = _NAME_RE.match(text)
    if not match:
        raise PipelineParseError(f"cannot parse pipeline entry {entry!r}")
    name = match.group(0)
    rest = text[match.end() :].strip()
    variant: Optional[str] = None
    args: Optional[str] = None
    if rest.startswith("<"):
        close = _matching(rest, 0, "<", ">", entry)
        variant = rest[1:close]
        rest = rest[close + 1 :].strip()
    if rest.startswith("("):
        close = _matching(rest, 0, "(", ")", entry)
        args = rest[1:close]
        rest = rest[close + 1 :].strip()
    if rest:
        raise PipelineParseError(
            f"unexpected trailing text {rest!r} in pipeline entry {entry!r}"
        )
    return name, variant, args


def _matching(text: str, start: int, open_ch: str, close_ch: str, entry: str) -> int:
    depth = 0
    for index, ch, in_quote in _iter_significant(text, f"pipeline entry {entry!r}"):
        if index < start or in_quote:
            continue
        if ch == open_ch:
            depth += 1
        elif ch == close_ch:
            depth -= 1
            if depth == 0:
                return index
    raise PipelineParseError(
        f"unbalanced {open_ch!r} in pipeline entry {entry!r}"
    )


def _parse_count(variant: Optional[str], keyword: str, entry: str, default: Optional[int]) -> int:
    if variant is None:
        if default is None:
            raise PipelineParseError(
                f"{keyword} needs an iteration count, e.g. {keyword}<2>(...): {entry!r}"
            )
        return default
    text = variant.strip()
    if not _INT_RE.match(text) or int(text) < 1:
        raise PipelineParseError(
            f"{keyword} count must be a positive integer, got {variant!r} in {entry!r}"
        )
    return int(text)


def _parse_entry(entry: str) -> List:
    name, variant, args = _decompose_entry(entry)

    if name in ("repeat", "fixpoint"):
        if args is None:
            raise PipelineParseError(
                f"{name} needs a parenthesised sub-pipeline, e.g. {name}(cse,dce): {entry!r}"
            )
        # An empty sub-pipeline is legal (e.g. ``fixpoint(default<O0>)``
        # expands the alias to no passes and describes as ``fixpoint()``);
        # the wrapper is then a no-op but must round-trip through describe().
        sub = PassManager(
            _parse_entries(args) if args.strip() else [], verify="off", name=name
        )
        if name == "repeat":
            return [RepeatPass(sub, _parse_count(variant, "repeat", entry, default=None))]
        return [
            FixpointPass(
                sub,
                _parse_count(
                    variant, "fixpoint", entry, default=FixpointPass.DEFAULT_MAX_ITERATIONS
                ),
            )
        ]

    if registry.has_alias(name):
        if args is not None:
            raise PipelineParseError(
                f"pipeline alias {name!r} does not take parameters: {entry!r}"
            )
        return registry.expand_alias(name, variant)

    if variant is not None:
        raise PipelineParseError(
            f"pass {name!r} does not take a <variant>: {entry!r} "
            f"(known aliases: {', '.join(registry.list_pipeline_aliases())})"
        )
    params = _parse_params(args or "", entry)
    iterations = params.pop("iterations", None)
    pass_ = registry.create_pass(name, **params)
    if iterations is None:
        return [pass_]
    if isinstance(iterations, bool) or not isinstance(iterations, int) or iterations < 1:
        raise PipelineParseError(
            f"iterations must be a positive integer in pipeline entry {entry!r}"
        )
    wrapper = RepeatPass(pass_, iterations)
    wrapper.pipeline_repr = registry.format_pipeline_entry(
        name, dict(params, iterations=iterations)
    )
    return [wrapper]


def _parse_entries(text: str) -> List:
    passes: List = []
    for part in _split_top_level(text, "pipeline"):
        if not part.strip():
            raise PipelineParseError(f"empty pipeline entry in {text!r}")
        passes.extend(_parse_entry(part))
    return passes


def parse_pipeline(
    text: str,
    verify: Union[str, bool] = "boundary",
    name: Optional[str] = None,
) -> PassManager:
    """Build a :class:`PassManager` from a textual pipeline description.

    ``parse_pipeline("default<O2>,licm,cse(iterations=2)")`` expands the
    standard O2 sequence and appends LICM plus two rounds of CSE.  ``verify``
    sets the manager's verification policy (``"each"``, ``"boundary"`` or
    ``"off"``; legacy booleans are accepted).

    Raises :class:`PipelineParseError` on malformed input.
    """
    if not isinstance(text, str):
        raise PipelineParseError(
            f"pipeline description must be a string, got {type(text).__name__}"
        )
    if not text.strip():
        # The empty pipeline is valid: it is exactly O0 (verification only).
        return PassManager([], verify=verify, name=name or "empty")
    passes = _parse_entries(text)
    return PassManager(passes, verify=coerce_verify_policy(verify), name=name or text)


def resolve_pipeline(
    pipeline: Union[str, PassManager],
    verify: Union[str, bool, None] = None,
    default_policy: str = "boundary",
) -> PassManager:
    """Normalise a pipeline argument (text or prebuilt manager) + verify policy.

    Shared by :func:`repro.core.distill.compile_composition` and
    :meth:`repro.Session.compile_model`.  With ``verify=None`` a textual
    pipeline gets ``default_policy`` and a prebuilt :class:`PassManager`
    keeps its own policy; an explicit ``verify`` always wins — a prebuilt
    manager is then rewrapped rather than mutated.
    """
    if isinstance(pipeline, PassManager):
        if verify is None:
            return pipeline
        policy = coerce_verify_policy(verify)
        if policy == pipeline.verify:
            return pipeline
        return PassManager(pipeline.passes, verify=policy, name=pipeline.name)
    policy = coerce_verify_policy(default_policy if verify is None else verify)
    return parse_pipeline(pipeline, verify=policy)
