"""Pipeline autotuner: race equivalence-proven candidates, cache the winner.

The paper's speed claims rest on a pass pipeline tuned to the workload, yet
every model shape shipped with one hard-coded ``default<O2>``.  This module
closes that gap with the QueryTorque recipe — generate rewrite candidates,
*prove* each one semantically equivalent, then race the survivors against the
incumbent — using three pieces of existing infrastructure:

1. **Candidate generation** (:func:`generate_candidates`) works on the
   incumbent's canonical pipeline text (``PassManager.describe()``) and is
   seeded by :meth:`PassManager.aggregate_timings`: passes that never changed
   the IR during the incumbent compile are pruned first, later repeats are
   deduplicated, the cleanup tail is wrapped in a ``fixpoint``, and a few
   adjacent reorderings plus the other ``default<Ok>`` levels round out the
   space.  Generation is deterministic: it consumes only ``changed``/``runs``
   counts (never noisy seconds), so the same model and budget always produce
   the same candidate list.

2. **The equivalence gate** compiles each candidate and demands bitwise-equal
   result/monitor/state buffers *and* final per-mechanism PRNG counters
   against the incumbent on the model's own representative inputs — the PR-4
   oracle bar, via the shared comparators in :mod:`repro.fuzz.compare` (not a
   parallel implementation).  A candidate that fails is recorded in
   provenance and never raced.

3. **The race** times survivors with noise-aware repeated runs (min-of-k
   after a warmup discard) and scores a weighted compile+run objective
   (``compile_weight * pipeline_seconds + run_weight * run_seconds``).  The
   incumbent is always raced and always eligible, so the returned winner's
   measured objective is never worse than the incumbent's.

The winner plus full provenance (every candidate tried, its timings, its
equivalence proof hash) is persisted in the :class:`~repro.driver.artifacts.
ArtifactStore` under a key derived from the structural composition hash, the
engine and the objective — *not* the run seed (see DESIGN.md, "Pipeline
autotuner") — so a warm :class:`~repro.driver.session.Session` or the serving
daemon resolves ``pipeline="auto"`` to the tuned pipeline with zero search
cost.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .artifacts import resolve_store, tuned_pipeline_key
from .pipeline import PipelineParseError, _split_top_level, parse_pipeline

__all__ = [
    "AutotuneConfig",
    "AutotuneResult",
    "CandidateRecord",
    "generate_candidates",
    "run_autotune",
    "TUNE_VERSION",
]

#: Payload schema version; stored entries with another version are ignored.
TUNE_VERSION = 1


@dataclass
class AutotuneConfig:
    """Search parameters; the defaults define the cache's default objective."""

    #: The pipeline to beat (always compiled, gated and raced itself).
    incumbent: str = "default<O2>"
    #: Engine the race runs on (and part of the cache key: a pipeline tuned
    #: for scalar ``compiled`` need not be the lane engine's winner).
    engine: str = "compiled"
    #: Maximum candidates taken through the gate + race (excluding the
    #: incumbent, which is always measured).
    budget: int = 12
    #: Timed runs per candidate; the minimum is scored.
    repeats: int = 3
    #: Untimed runs discarded before timing starts (cold-cache noise).
    warmup: int = 1
    #: Objective weights.  Run time dominates by default: a compiled model is
    #: paid for once and run for hundreds of trials (the paper's amortisation
    #: argument), but compile cost must stay in the objective or the tuner
    #: would happily hand a serving daemon a pipeline that doubles cold-start.
    compile_weight: float = 1.0
    run_weight: float = 25.0
    #: Run seed used for the equivalence proof and the race.  Deliberately
    #: *excluded* from the cache key: equivalence is proven at the IR level
    #: (same module ⇒ same behaviour for every seed) and relative pipeline
    #: speed does not depend on which PRNG stream the trials draw.
    run_seed: int = 0
    #: Test hook: ``measure(pipeline_text, model) -> (compile_s, run_s)``
    #: replaces wall-clock measurement with a deterministic stand-in.
    measure: Optional[Callable[[str, object], Tuple[float, float]]] = None
    #: Test hook: replaces :func:`generate_candidates` (same signature).
    generate: Optional[Callable[[List[str], Dict[str, dict], int], List[str]]] = None

    def objective_id(self) -> str:
        """Canonical objective identity (participates in the cache key)."""
        return f"c{self.compile_weight:g}+r{self.run_weight:g}"


@dataclass
class CandidateRecord:
    """Provenance of one candidate: what happened to it and why."""

    pipeline: str
    #: "winner" | "equivalent" | "incumbent" | "rejected" | "error"
    status: str
    equivalent: bool = False
    #: Proof hash of the observed (buffers, PRNG counters); equivalent
    #: candidates carry the incumbent's hash — auditable after the fact.
    proof: Optional[str] = None
    compile_s: float = 0.0
    run_s: float = 0.0
    objective: float = float("inf")
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "pipeline": self.pipeline,
            "status": self.status,
            "equivalent": self.equivalent,
            "proof": self.proof,
            "compile_s": self.compile_s,
            "run_s": self.run_s,
            "objective": self.objective,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CandidateRecord":
        return cls(**{k: data[k] for k in (
            "pipeline", "status", "equivalent", "proof",
            "compile_s", "run_s", "objective", "detail",
        )})


@dataclass
class AutotuneResult:
    """Outcome of one autotune call (fresh search or cache hit)."""

    winner: str
    objective: float
    incumbent: str
    incumbent_objective: float
    #: True when the tuned-pipeline cache served the winner (search skipped).
    cache_hit: bool
    #: Candidates compiled and gated by *this* call (0 on a cache hit).
    searched: int
    records: List[CandidateRecord] = field(default_factory=list)
    key: Optional[str] = None
    engine: str = "compiled"

    @property
    def improvement(self) -> float:
        """Incumbent objective / winner objective (>= 1.0 by construction)."""
        if self.objective <= 0:
            return 1.0
        return self.incumbent_objective / self.objective

    def to_payload(self, config: AutotuneConfig) -> Dict[str, object]:
        return {
            "version": TUNE_VERSION,
            "winner": self.winner,
            "objective": self.objective,
            "incumbent": self.incumbent,
            "incumbent_objective": self.incumbent_objective,
            "engine": self.engine,
            "objective_id": config.objective_id(),
            "budget": config.budget,
            "searched": self.searched,
            "candidates": [record.to_dict() for record in self.records],
        }


# ---------------------------------------------------------------------------
# Candidate generation
# ---------------------------------------------------------------------------


def _entry_name(entry: str) -> str:
    """The bare pass name of one canonical pipeline entry."""
    return re.split(r"[(<]", entry.strip(), maxsplit=1)[0]


def generate_candidates(
    entries: List[str], aggregate: Dict[str, dict], budget: int
) -> List[str]:
    """Deterministic candidate pipeline texts derived from the incumbent.

    ``entries`` is the incumbent's canonical entry list (its ``describe()``
    text split at top level) and ``aggregate`` its
    :meth:`~repro.passes.pass_manager.PassManager.aggregate_timings` — only
    the ``changed`` counts are consulted, never the (noisy) seconds, so the
    same compile always yields the same candidates in the same order.
    """
    seen = set()
    texts: List[str] = []

    def add(candidate_entries: Sequence[str]) -> None:
        text = ",".join(e for e in candidate_entries if e)
        if text not in seen:
            seen.add(text)
            texts.append(text)

    never_changed = [
        name
        for name in dict.fromkeys(_entry_name(e) for e in entries)
        if name in aggregate and aggregate[name].get("changed", 0) == 0
    ]

    # 1. Prune every pass that never changed the IR — the highest-value
    #    rewrite (same optimized module, cheaper compile) and the reason the
    #    per-pass changed/no-op counters exist.
    pruned = [e for e in entries if _entry_name(e) not in never_changed]
    add(pruned)

    # 2. One variant per no-op pass, for when the combined prune is unsound
    #    on this model (a no-op pass may still enable a later pass next run).
    for name in never_changed:
        add([e for e in entries if _entry_name(e) != name])

    # 3. Deduplicate later repeats: keep only each pass's first occurrence.
    first_only: List[str] = []
    taken = set()
    for entry in pruned:
        name = _entry_name(entry)
        if name not in taken:
            taken.add(name)
            first_only.append(entry)
    add(first_only)

    # 4. Iteration restructuring: replace the pruned pipeline's second half
    #    (the cleanup/second-round tail) with a fixpoint over it, so the tail
    #    runs exactly as often as it keeps finding work.
    if len(pruned) >= 4:
        half = len(pruned) // 2
        add(pruned[:half] + [f"fixpoint<4>({','.join(pruned[half:])})"])
        add([f"fixpoint<3>({','.join(first_only)})"])

    # 5. A few adjacent reorderings near the head of the pruned pipeline
    #    (pass-ordering sensitivity is front-loaded: inlining/mem2reg feed
    #    everything downstream).
    for index in range(min(len(pruned) - 1, 4)):
        swapped = list(pruned)
        swapped[index], swapped[index + 1] = swapped[index + 1], swapped[index]
        add(swapped)

    # 6. The neighbouring standard levels: O1 may win the compile-weighted
    #    objective on tiny models, O3's aggressive inlining the run side.
    add(["default<O1>"])
    add(["default<O3>"])

    return texts[: max(budget, 0)]


# ---------------------------------------------------------------------------
# The search loop
# ---------------------------------------------------------------------------


def _pipeline_compile_seconds(model) -> float:
    """The pipeline-dependent share of a compile's wall clock.

    Sanitize and layout cost the same under every pipeline; optimisation,
    codegen and lowering scale with what the pipeline left behind.
    """
    stats = model.stats
    return stats.optimize_seconds + stats.codegen_seconds + stats.lower_seconds


def _race_seconds(model, engine: str, inputs, num_trials: int, seed: int,
                  warmup: int, repeats: int) -> float:
    """Min-of-k run time on ``engine`` after ``warmup`` discarded runs."""
    instance = model.engine_instance(engine)
    for _ in range(max(warmup, 0)):
        instance.run(inputs, num_trials=num_trials, seed=seed)
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        instance.run(inputs, num_trials=num_trials, seed=seed)
        best = min(best, time.perf_counter() - start)
    return best


def result_from_payload(payload: Dict[str, object], key: str) -> Optional[AutotuneResult]:
    """Rebuild an :class:`AutotuneResult` from a stored payload (or ``None``)."""
    if not isinstance(payload, dict) or payload.get("version") != TUNE_VERSION:
        return None
    try:
        parse_pipeline(str(payload["winner"]))
        return AutotuneResult(
            winner=str(payload["winner"]),
            objective=float(payload["objective"]),
            incumbent=str(payload["incumbent"]),
            incumbent_objective=float(payload["incumbent_objective"]),
            cache_hit=True,
            searched=0,
            records=[CandidateRecord.from_dict(c) for c in payload["candidates"]],
            key=key,
            engine=str(payload["engine"]),
        )
    except (KeyError, TypeError, ValueError, PipelineParseError):
        return None


def run_autotune(
    composition,
    inputs,
    num_trials: int = 1,
    config: Optional[AutotuneConfig] = None,
    store=None,
    force: bool = False,
) -> AutotuneResult:
    """Search for the best equivalent pipeline for ``composition``.

    ``inputs``/``num_trials`` are the representative workload the equivalence
    proof and the race both run; ``store`` follows the usual artifact-store
    selector conventions (``None`` = environment, ``False`` = disabled).
    With a store, a persisted winner for the same (structure, engine,
    objective) is returned immediately unless ``force`` is set.

    Prefer :meth:`repro.Session.autotune`, which wires in the session's store
    and maintains the tuned-cache counters the serving daemon reports.
    """
    from ..core.distill import compile_composition
    from ..fuzz.compare import buffers_equal, final_rng_counters, proof_hash, raw_buffers

    config = config or AutotuneConfig()
    store = resolve_store(store)
    key = tuned_pipeline_key(composition, config.engine, config.objective_id())

    if store is not None and not force:
        cached = result_from_payload(store.get(key), key)
        if cached is not None:
            return cached

    # -- incumbent: compile, observe, race ---------------------------------
    # store=False throughout the search: a warm artifact hit would replay
    # stale stats and zero out compile_s, and losing candidates must not
    # pollute the store.
    incumbent_model = compile_composition(
        composition, pipeline=config.incumbent, store=False
    )
    try:
        baseline = raw_buffers(
            incumbent_model, inputs, num_trials, config.run_seed, "compiled"
        )
        base_counters = final_rng_counters(incumbent_model, baseline[2])
        base_proof = proof_hash(baseline, base_counters)

        if config.measure is not None:
            inc_compile_s, inc_run_s = config.measure(config.incumbent, incumbent_model)
        else:
            inc_compile_s = _pipeline_compile_seconds(incumbent_model)
            inc_run_s = _race_seconds(
                incumbent_model, config.engine, inputs, num_trials,
                config.run_seed, config.warmup, config.repeats,
            )
        incumbent_objective = (
            config.compile_weight * inc_compile_s + config.run_weight * inc_run_s
        )
        records = [
            CandidateRecord(
                pipeline=config.incumbent,
                status="incumbent",
                equivalent=True,
                proof=base_proof,
                compile_s=inc_compile_s,
                run_s=inc_run_s,
                objective=incumbent_objective,
            )
        ]

        # -- candidates ----------------------------------------------------
        entries = _split_top_level(
            incumbent_model.pipeline.describe(), "autotune incumbent"
        )
        aggregate = incumbent_model.pipeline.aggregate_timings()
        generate = config.generate or generate_candidates
        candidates = [
            text
            for text in generate(entries, aggregate, config.budget)
            if text != config.incumbent
        ]

        searched = 0
        for text in candidates:
            searched += 1
            record = CandidateRecord(pipeline=text, status="error")
            records.append(record)
            try:
                model = compile_composition(composition, pipeline=text, store=False)
            except Exception as exc:  # noqa: BLE001 - a candidate may not compile
                record.detail = f"{type(exc).__name__}: {exc}"
                continue
            try:
                # Equivalence gate: bitwise buffers + final PRNG counters vs
                # the incumbent, on the representative inputs.
                try:
                    observed = raw_buffers(
                        model, inputs, num_trials, config.run_seed, "compiled"
                    )
                except Exception as exc:  # noqa: BLE001
                    record.detail = f"{type(exc).__name__}: {exc}"
                    continue
                mismatch = buffers_equal(baseline, observed)
                counters = final_rng_counters(model, observed[2])
                if mismatch is None and counters != base_counters:
                    mismatch = (
                        f"final PRNG counters diverge: {base_counters} vs {counters}"
                    )
                if mismatch is not None:
                    record.status = "rejected"
                    record.proof = proof_hash(observed, counters)
                    record.detail = mismatch
                    continue
                record.equivalent = True
                record.proof = base_proof

                # The race: only proven candidates are ever timed.
                if config.measure is not None:
                    compile_s, run_s = config.measure(text, model)
                else:
                    compile_s = _pipeline_compile_seconds(model)
                    run_s = _race_seconds(
                        model, config.engine, inputs, num_trials,
                        config.run_seed, config.warmup, config.repeats,
                    )
                record.status = "equivalent"
                record.compile_s = compile_s
                record.run_s = run_s
                record.objective = (
                    config.compile_weight * compile_s + config.run_weight * run_s
                )
            finally:
                model.close_engines()

        # -- pick the winner (incumbent eligible; ties keep the incumbent) --
        winner = min(
            (r for r in records if r.equivalent),
            key=lambda r: (r.objective, r.status != "incumbent"),
        )
        if winner.status != "incumbent":
            winner.status = "winner"

        result = AutotuneResult(
            winner=winner.pipeline,
            objective=winner.objective,
            incumbent=config.incumbent,
            incumbent_objective=incumbent_objective,
            cache_hit=False,
            searched=searched,
            records=records,
            key=key,
            engine=config.engine,
        )
        if store is not None:
            store.put(key, result.to_payload(config))
        return result
    finally:
        incumbent_model.close_engines()
