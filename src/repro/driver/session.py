"""The caching :class:`Session` facade and the top-level ``repro.compile``.

A :class:`Session` memoizes compiled artifacts keyed on the *structure* of a
composition (not its object identity), the canonical pipeline text, the
sanitization seed, the verification policy and any auxiliary compile flags.
Grid searches, parameter sweeps and the benchmark harness routinely rebuild
structurally identical models; with a session they compile once::

    import repro
    from repro.models import stroop

    engine = repro.compile(stroop.build_botvinick_stroop(), target="gpu-sim")
    results = engine.run(stroop.default_inputs("incongruent"), num_trials=8)

``repro.compile`` uses a process-wide default session; construct your own
:class:`Session` for isolated caches (e.g. per experiment).
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..cogframe.composition import Composition
from ..passes.pass_manager import (
    FixpointPass,
    PassManager,
    RepeatPass,
    coerce_verify_policy,
)
from .engines import EngineInstance, get_engine
from .pipeline import resolve_pipeline

__all__ = ["Session", "compile", "default_session", "structural_fingerprint"]


# ---------------------------------------------------------------------------
# Structural fingerprinting
# ---------------------------------------------------------------------------


def _canonical(value) -> object:
    """Reduce an arbitrary model attribute to a hashable canonical form."""
    if isinstance(value, np.ndarray):
        return ("ndarray", value.shape, tuple(np.asarray(value, dtype=float).ravel().tolist()))
    if isinstance(value, (np.floating, np.integer)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(repr(_canonical(v)) for v in value)))
    if isinstance(value, dict):
        return tuple(sorted((str(k), _canonical(v)) for k, v in value.items()))
    return value


def _function_key(function) -> Tuple:
    return (
        type(function).__name__,
        _canonical(getattr(function, "params", {})),
    )


def _condition_key(condition) -> Tuple:
    """Recursively serialise a scheduling condition."""
    from ..cogframe.conditions import Condition
    from ..cogframe.mechanisms import Mechanism

    parts = []
    for key, value in sorted(vars(condition).items()):
        if isinstance(value, Condition):
            parts.append((key, _condition_key(value)))
        elif isinstance(value, (list, tuple)) and any(isinstance(v, Condition) for v in value):
            parts.append((key, tuple(_condition_key(v) for v in value)))
        elif isinstance(value, Mechanism):
            parts.append((key, ("node", value.name)))
        else:
            parts.append((key, _canonical(value)))
    return (type(condition).__name__, tuple(parts))


def _mechanism_key(mechanism) -> Tuple:
    from ..cogframe.mechanisms import GridSearchControlMechanism

    key = [
        type(mechanism).__name__,
        mechanism.name,
        tuple((port.name, int(port.size)) for port in mechanism.input_ports),
        _function_key(mechanism.function),
    ]
    if isinstance(mechanism, GridSearchControlMechanism):
        key.append(_canonical(mechanism.levels))
        key.append(mechanism.objective_step)
        key.append(
            tuple(
                (_mechanism_key(step.mechanism), _canonical(step.sources))
                for step in mechanism.steps
            )
        )
    return tuple(key)


def structural_fingerprint(composition: Composition) -> str:
    """A hex digest identifying a composition's structure.

    Two compositions built by the same code path (same nodes, functions,
    parameters, projections, conditions and scheduling limits) produce the
    same fingerprint even though they are distinct objects — this is what
    lets :class:`Session` reuse compiled artifacts across rebuilds.
    """
    key = (
        composition.name,
        tuple(_mechanism_key(m) for _, m in sorted(composition.mechanisms.items())),
        tuple(
            (
                p.sender.name,
                p.receiver.name,
                p.port,
                _canonical(p.matrix),
                _canonical(p.sender_slice),
            )
            for p in composition.projections
        ),
        tuple(sorted((name, _condition_key(c)) for name, c in composition.conditions.items())),
        _condition_key(composition.termination),
        int(composition.max_passes),
        tuple(composition.input_nodes),
        tuple(composition.output_nodes),
        tuple(composition.monitored_nodes),
    )
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Session
# ---------------------------------------------------------------------------


def _freeze_flags(flags: Optional[Dict[str, object]]) -> Tuple:
    """Canonical cache-key form of a compile ``flags`` mapping.

    Delegates to :func:`repro.driver.artifacts.normalize_flags`: known flags
    collapse to their *effective* boolean value (so ``{"analysis_cache":
    True}`` — an explicit default — keys identically to no flags at all,
    while ``{"sanitize": True}`` or ``{"analysis_cache": False}`` can never
    alias the clean entry), and unknown flags are kept verbatim.
    """
    from .artifacts import normalize_flags

    return normalize_flags(flags)


def _pass_struct(pass_) -> object:
    """Structural identity of a pass for cache keying.

    ``PassManager.describe()`` alone is not sufficient: a hand-built pass
    that never went through the registry has no ``pipeline_repr`` and would
    describe as its bare name, collapsing differently-parameterised
    pipelines onto one key.  This walks the actual objects instead.
    """
    if isinstance(pass_, PassManager):
        return ("pipeline", tuple(_pass_struct(p) for p in pass_.passes))
    if isinstance(pass_, RepeatPass):
        return ("repeat", pass_.iterations, _pass_struct(pass_.inner))
    if isinstance(pass_, FixpointPass):
        return ("fixpoint", pass_.max_iterations, _pass_struct(pass_.inner))
    attrs = tuple(
        sorted(
            (key, repr(_canonical(value)))
            for key, value in vars(pass_).items()
            if key != "pipeline_repr" and not key.startswith("_") and not callable(value)
        )
    )
    return (type(pass_).__module__, type(pass_).__qualname__, attrs)


def _pipeline_fingerprint(pipeline: PassManager) -> str:
    return repr(_pass_struct(pipeline))


class Session:
    """A compilation session with artifact memoization.

    ``compile_model`` returns the cached :class:`CompiledModel` for a
    structurally identical request; ``compile`` additionally binds the model
    to a target engine from the backend registry and returns a ready-to-run
    :class:`EngineInstance`.  Both are thread-safe.
    """

    def __init__(self, verify: Union[str, bool] = "boundary", store=None):
        self.default_verify = coerce_verify_policy(verify)
        #: Artifact-store selector forwarded to every compile: ``None``
        #: consults ``REPRO_ARTIFACT_DIR``, ``False`` disables the store, a
        #: path or :class:`~repro.driver.artifacts.ArtifactStore` uses that
        #: store (see :func:`repro.driver.artifacts.resolve_store`).
        self.store = store
        self._lock = threading.RLock()
        self._models: Dict[Tuple, object] = {}
        self._instances: Dict[Tuple, EngineInstance] = {}
        self.hits = 0
        self.misses = 0
        #: Tuned-pipeline counters: ``tuned_hits``/``tuned_misses`` count
        #: ``pipeline="auto"`` resolutions against the persisted autotune
        #: cache; ``autotune_searches``/``autotune_cached`` count
        #: :meth:`autotune` calls that ran a fresh search vs were served a
        #: stored winner.  Surfaced by :meth:`cache_info` (and therefore the
        #: serving daemon's ``stats`` op).
        self.tuned_hits = 0
        self.tuned_misses = 0
        self.autotune_searches = 0
        self.autotune_cached = 0

    # -- compilation -------------------------------------------------------------
    def _model_key(
        self,
        composition: Composition,
        pipeline: PassManager,
        seed: int,
        flags: Optional[Dict[str, object]],
    ) -> Tuple:
        return (
            structural_fingerprint(composition),
            _pipeline_fingerprint(pipeline),
            int(seed),
            pipeline.verify,
            _freeze_flags(flags),
        )

    def compile_model(
        self,
        composition: Composition,
        pipeline: Union[str, PassManager] = "default<O2>",
        seed: int = 0,
        verify: Union[str, bool, None] = None,
        flags: Optional[Dict[str, object]] = None,
    ):
        """Compile (or fetch from cache) a composition; returns a
        :class:`repro.core.distill.CompiledModel`.

        With ``verify=None`` a textual pipeline gets the session's default
        policy and a prebuilt :class:`PassManager` keeps its own; an
        explicit policy always wins (the manager is rewrapped, not mutated).

        Every (non-memoized) compile owns a fresh
        :class:`repro.analysis.manager.AnalysisManager`, so analyses are
        cached across the pipeline's passes; pass
        ``flags={"analysis_cache": False}`` to compile cold (and get a
        distinct cache key, since flags participate in it).
        """
        from ..core.distill import compile_composition

        if pipeline == "auto":
            pipeline = self.resolve_auto_pipeline(composition)
        pipeline = resolve_pipeline(
            pipeline, verify=verify, default_policy=self.default_verify
        )
        key = self._model_key(composition, pipeline, seed, flags)
        with self._lock:
            model = self._models.get(key)
            if model is not None:
                self.hits += 1
                return model
        # Compile outside the lock: compilation can take seconds and other
        # threads may be compiling unrelated models meanwhile.
        model = compile_composition(
            composition, pipeline=pipeline, seed=seed, flags=flags, store=self.store
        )
        with self._lock:
            winner = self._models.setdefault(key, model)
            if winner is model:
                self.misses += 1
            else:
                self.hits += 1
        return winner

    def compile(
        self,
        composition: Composition,
        target: str = "compiled",
        pipeline: Union[str, PassManager] = "default<O2>",
        seed: int = 0,
        verify: Union[str, bool, None] = None,
        flags: Optional[Dict[str, object]] = None,
    ) -> EngineInstance:
        """Compile a composition and bind it to ``target``; returns an
        :class:`EngineInstance` whose ``run(inputs, num_trials)`` executes
        trials on that engine."""
        get_engine(target)  # validate the target before compiling
        if pipeline == "auto":
            # Tuned pipelines are cached per engine: resolve against the
            # race's target so a lane-tuned winner never leaks to "compiled".
            pipeline = self.resolve_auto_pipeline(composition, engine=target)
        model = self.compile_model(
            composition, pipeline=pipeline, seed=seed, verify=verify, flags=flags
        )
        # Bindings are memoized on the model itself, so the session, direct
        # `model.run(engine=...)` calls and other sessions holding the same
        # cached model all share one instance (and one worker pool).
        instance = model.engine_instance(target)
        with self._lock:
            self._instances[(id(model), target)] = instance
        return instance

    def run_batch(
        self,
        composition: Composition,
        inputs_batch,
        target: str = "compiled",
        num_trials=None,
        seed=0,
        pipeline: Union[str, PassManager] = "default<O2>",
        compile_seed: int = 0,
        verify: Union[str, bool, None] = None,
        flags: Optional[Dict[str, object]] = None,
        **options,
    ):
        """Compile (cached) and execute many input batches in one call.

        ``inputs_batch`` is a sequence of ``inputs`` values as accepted by
        :meth:`EngineInstance.run`; ``num_trials`` and ``seed`` (the *run*
        seed — ``compile_seed`` is the sanitization seed) may be scalars or
        per-element sequences.  Returns one :class:`RunResults` per element,
        bitwise identical to looping ``run`` over the elements — parallel
        targets batch the elements' grid evaluations into shared pool
        dispatches (see DESIGN.md, "Parallel grid search").
        """
        instance = self.compile(
            composition,
            target=target,
            pipeline=pipeline,
            seed=compile_seed,
            verify=verify,
            flags=flags,
        )
        return instance.run_batch(
            inputs_batch, num_trials=num_trials, seed=seed, **options
        )

    # -- pipeline autotuning -------------------------------------------------------
    def resolve_auto_pipeline(self, composition: Composition, engine: str = "compiled") -> str:
        """Resolve ``pipeline="auto"`` to this model shape's tuned pipeline.

        Looks up the persisted autotune winner for (structural fingerprint,
        ``engine``, the default objective) in the session's artifact store;
        on a miss — no store, never tuned, or a stale/corrupt entry — falls
        back to the incumbent ``default<O2>``.  Zero search cost either way:
        resolution is one store read.
        """
        from .artifacts import resolve_store, tuned_pipeline_key
        from .autotune import AutotuneConfig, result_from_payload

        config = AutotuneConfig(engine=engine)
        store = resolve_store(self.store)
        if store is not None:
            key = tuned_pipeline_key(composition, engine, config.objective_id())
            result = result_from_payload(store.get(key), key)
            if result is not None:
                with self._lock:
                    self.tuned_hits += 1
                return result.winner
        with self._lock:
            self.tuned_misses += 1
        return config.incumbent

    def autotune(
        self,
        composition: Union[str, Composition],
        budget: Optional[int] = None,
        inputs=None,
        num_trials: Optional[int] = None,
        engine: str = "compiled",
        config=None,
        force: bool = False,
    ):
        """Search for the fastest equivalence-proven pipeline for a model.

        ``composition`` may be a :class:`Composition` (then ``inputs`` is
        required — the representative workload the equivalence proof and the
        race run) or a registered model name (inputs and trial count default
        to the registry entry's).  Returns an :class:`repro.driver.autotune.
        AutotuneResult`; the winner plus provenance is persisted in the
        session's artifact store, so later ``compile(pipeline="auto")`` calls
        — in this session, a fresh one, or the serving daemon — pick it up
        with zero search cost.  A persisted winner short-circuits the search
        (``result.cache_hit``) unless ``force`` is set.
        """
        from .autotune import AutotuneConfig, run_autotune

        if isinstance(composition, str):
            from ..models import get_model

            entry = get_model(composition)
            composition = entry.build()
            if inputs is None:
                inputs = entry.inputs()
                if num_trials is None:
                    num_trials = entry.num_trials
        if inputs is None:
            raise ValueError(
                "autotune needs representative inputs; pass inputs=... or a "
                "registered model name"
            )
        if config is None:
            config = AutotuneConfig(engine=engine)
        if budget is not None:
            config = dataclasses.replace(config, budget=int(budget))
        result = run_autotune(
            composition,
            inputs,
            num_trials=num_trials if num_trials is not None else 1,
            config=config,
            store=self.store,
            force=force,
        )
        with self._lock:
            if result.cache_hit:
                self.autotune_cached += 1
            else:
                self.autotune_searches += 1
        return result

    def recompile(self, model, composition=None, changed=None) -> Dict[str, object]:
        """Incrementally recompile a cached model after an edit, re-keying it.

        Delegates to :meth:`CompiledModel.recompile` (patch-in-place with a
        full-compile fallback), then moves the model's cache entry to the
        key of its post-edit composition: the pre-edit key must not serve a
        model whose parameters have moved, and a later request for the
        edited structure should hit.  Stale engine bindings are dropped (the
        patch already closed them).
        """
        report = model.recompile(
            composition=composition, changed=changed, store=self.store
        )
        with self._lock:
            for key, cached in list(self._models.items()):
                if cached is model:
                    del self._models[key]
            for key in list(self._instances):
                if key[0] == id(model):
                    del self._instances[key]
            new_key = self._model_key(
                model.composition, model.pipeline, model.seed, model.flags
            )
            self._models[new_key] = model
        return report

    # -- static safety suite -------------------------------------------------------
    def lint(
        self,
        composition: Union[str, Composition],
        pipeline: Union[str, PassManager] = "default<O2>",
        seed: int = 0,
        verify: Union[str, bool, None] = None,
        flags: Optional[Dict[str, object]] = None,
        checks=None,
    ):
        """Compile (cached) and run the static safety suite over the IR.

        ``composition`` may be a :class:`Composition` or a registered model
        name.  Returns a :class:`repro.lint.LintReport`; ``report.ok`` is
        True when no finding reaches the default gate severity.  The compile
        goes through the session cache, so linting a model you already ran
        costs only the analyses.
        """
        from ..lint import LintReport, run_lint

        if isinstance(composition, str):
            from ..models import get_model

            entry = get_model(composition)
            name = entry.name
            composition = entry.build()
        else:
            name = composition.name
        model = self.compile_model(
            composition, pipeline=pipeline, seed=seed, verify=verify, flags=flags
        )
        if not isinstance(pipeline, str):
            pipeline = pipeline.describe()
        return LintReport(
            module_name=name,
            diagnostics=run_lint(model.module, checks=checks),
            pipeline=pipeline,
        )

    # -- cache management ----------------------------------------------------------
    def cache_info(self) -> Dict[str, object]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "models": len(self._models),
                "instances": len(self._instances),
                "tuned": {
                    "hits": self.tuned_hits,
                    "misses": self.tuned_misses,
                    "searches": self.autotune_searches,
                    "cached_results": self.autotune_cached,
                },
            }

    def close(self) -> None:
        """Release engine-held resources (worker pools) of cached bindings."""
        with self._lock:
            instances = list(self._instances.values())
        for instance in instances:
            instance.close()

    def clear(self) -> None:
        self.close()
        with self._lock:
            self._models.clear()
            self._instances.clear()
            self.hits = 0
            self.misses = 0
            self.tuned_hits = 0
            self.tuned_misses = 0
            self.autotune_searches = 0
            self.autotune_cached = 0

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


_DEFAULT_SESSION: Optional[Session] = None
_DEFAULT_LOCK = threading.Lock()


def default_session() -> Session:
    """The process-wide session backing :func:`repro.compile`."""
    global _DEFAULT_SESSION
    with _DEFAULT_LOCK:
        if _DEFAULT_SESSION is None:
            _DEFAULT_SESSION = Session()
        return _DEFAULT_SESSION


def compile(
    composition: Composition,
    target: str = "compiled",
    pipeline: Union[str, PassManager] = "default<O2>",
    seed: int = 0,
    verify: Union[str, bool, None] = None,
    flags: Optional[Dict[str, object]] = None,
) -> EngineInstance:
    """Compile ``composition`` and bind it to ``target`` (``repro.compile``).

    Equivalent to ``default_session().compile(...)``: repeated calls with a
    structurally identical model, pipeline, seed and flags reuse the cached
    artifacts instead of recompiling.
    """
    return default_session().compile(
        composition, target=target, pipeline=pipeline, seed=seed, verify=verify, flags=flags
    )
