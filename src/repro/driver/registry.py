"""Pass and pipeline-alias registries.

Every optimisation pass in :mod:`repro.passes` self-registers here with the
:func:`register_pass` decorator, under the short name used in textual pipeline
descriptions::

    @register_pass("mem2reg")
    class Mem2Reg(FunctionPass):
        ...

The registry deliberately has no dependencies on the IR or pass modules, so
it can be imported from anywhere without creating cycles; the heavy lifting
of *using* registered passes lives in :mod:`repro.driver.pipeline`.

Pipeline *aliases* are names that expand into whole pass sequences.  The
standard ``default<O0..O3>`` alias (registered by
:mod:`repro.passes.pass_manager`) reproduces the paper's fixed optimisation
levels; experiments can register their own.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import PipelineParseError

#: name -> factory callable (usually the pass class itself).
_PASS_REGISTRY: Dict[str, Callable] = {}

#: alias name -> expander; an expander maps an optional ``<variant>`` string
#: to the list of pass instances the alias stands for.
_ALIAS_REGISTRY: Dict[str, Callable[[Optional[str]], List]] = {}

_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Import the built-in pass modules so their registrations run."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        importlib.import_module("repro.passes")
        _BUILTINS_LOADED = True


def register_pass(name: str) -> Callable:
    """Class/factory decorator registering a pass under ``name``.

    The decorated callable is invoked with the keyword parameters appearing
    in the textual pipeline entry (e.g. ``inline(threshold=400)``) and must
    return a :class:`repro.passes.Pass` instance.
    """

    def decorator(factory: Callable) -> Callable:
        existing = _PASS_REGISTRY.get(name)
        if existing is not None and existing is not factory:
            raise ValueError(f"pass name {name!r} is already registered to {existing!r}")
        _PASS_REGISTRY[name] = factory
        return factory

    return decorator


def unregister_pass(name: str) -> bool:
    """Remove a registered pass; returns whether it was present.

    Intended for test harnesses that install throwaway passes (e.g. the
    conformance fuzzer's deliberately-miscompiling pass) and must not leak
    them into the process-wide registry other tests and campaigns see.
    """
    return _PASS_REGISTRY.pop(name, None) is not None


def register_pipeline_alias(name: str) -> Callable:
    """Decorator registering an alias expander under ``name``.

    The expander receives the ``<variant>`` text (``None`` when absent) and
    returns a list of pass instances; it should raise :class:`ValueError`
    for unknown variants.
    """

    def decorator(expander: Callable[[Optional[str]], List]) -> Callable:
        existing = _ALIAS_REGISTRY.get(name)
        if existing is not None and existing is not expander:
            raise ValueError(f"pipeline alias {name!r} is already registered")
        _ALIAS_REGISTRY[name] = expander
        return expander

    return decorator


def format_param_value(value) -> str:
    """Canonical textual form of a pass parameter (round-trips via parsing)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    return repr(value) if isinstance(value, str) else str(value)


def format_pipeline_entry(name: str, params: Optional[Dict[str, object]] = None) -> str:
    """Canonical textual form of one pipeline entry, e.g. ``inline(threshold=400)``."""
    if not params:
        return name
    args = ", ".join(f"{key}={format_param_value(value)}" for key, value in params.items())
    return f"{name}({args})"


def create_pass(name: str, **params):
    """Instantiate the registered pass ``name`` with ``params``.

    The returned instance carries a ``pipeline_repr`` attribute holding its
    canonical textual form, which :meth:`PassManager.describe` uses so that
    ``parse_pipeline(pm.describe())`` reconstructs the same pipeline.
    """
    _ensure_builtins()
    factory = _PASS_REGISTRY.get(name)
    if factory is None:
        known = ", ".join(sorted(_PASS_REGISTRY))
        raise PipelineParseError(f"unknown pass {name!r}; known passes: {known}")
    try:
        instance = factory(**params)
    except TypeError as exc:
        raise PipelineParseError(f"bad parameters for pass {name!r}: {exc}") from exc
    instance.pipeline_repr = format_pipeline_entry(name, params)
    return instance


def has_alias(name: str) -> bool:
    _ensure_builtins()
    return name in _ALIAS_REGISTRY


def expand_alias(name: str, variant: Optional[str] = None) -> List:
    """Expand a pipeline alias into its pass sequence."""
    _ensure_builtins()
    expander = _ALIAS_REGISTRY.get(name)
    if expander is None:
        known = ", ".join(sorted(_ALIAS_REGISTRY))
        raise PipelineParseError(f"unknown pipeline alias {name!r}; known aliases: {known}")
    try:
        return list(expander(variant))
    except ValueError as exc:
        raise PipelineParseError(
            f"bad variant {variant!r} for pipeline alias {name!r}: {exc}"
        ) from exc


def list_passes() -> Tuple[str, ...]:
    """Names of every registered pass, sorted."""
    _ensure_builtins()
    return tuple(sorted(_PASS_REGISTRY))


def pass_preserves(name: str):
    """The ``preserves`` declaration of the registered pass ``name``.

    Returns the raw declaration (``"all"``, ``"cfg"``, ``"none"`` or an
    iterable of analysis names) read from the pass class; coerce with
    :func:`repro.analysis.manager.coerce_preserved` when a
    :class:`~repro.analysis.manager.PreservedAnalyses` is needed.  Passes
    without a declaration report ``"none"`` — the conservative default.
    """
    _ensure_builtins()
    factory = _PASS_REGISTRY.get(name)
    if factory is None:
        known = ", ".join(sorted(_PASS_REGISTRY))
        raise PipelineParseError(f"unknown pass {name!r}; known passes: {known}")
    return getattr(factory, "preserves", "none")


def pass_metadata(name: str) -> Dict[str, object]:
    """Registry metadata for one pass: its name, ``preserves`` declaration
    and docstring summary (used by tooling and the DESIGN.md tables)."""
    factory = _PASS_REGISTRY.get(name)
    if factory is None:
        _ensure_builtins()
        factory = _PASS_REGISTRY.get(name)
    if factory is None:
        known = ", ".join(sorted(_PASS_REGISTRY))
        raise PipelineParseError(f"unknown pass {name!r}; known passes: {known}")
    doc = (factory.__doc__ or "").strip().splitlines()
    return {
        "name": name,
        "preserves": getattr(factory, "preserves", "none"),
        "summary": doc[0] if doc else "",
    }


def list_pipeline_aliases() -> Tuple[str, ...]:
    """Names of every registered pipeline alias, sorted."""
    _ensure_builtins()
    return tuple(sorted(_ALIAS_REGISTRY))
