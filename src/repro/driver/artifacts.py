"""Content-addressed on-disk artifact store for compile units.

The store persists compilation products keyed by content hashes so that warm
processes skip work entirely (see DESIGN.md, "Compile units and the artifact
store"):

* **model entries** — everything needed to rebuild a :class:`CompiledModel`
  without running sanitize/layout/irgen/optimize/codegen: the encoded
  optimized IR module, the sanitization info, the static layout, the
  grid-search metadata, the generated Python source and the per-function
  unit fingerprints;
* **optimize entries** — the encoded optimized module alone, keyed on the
  *pre-optimization* unit fingerprints.  Models that differ only in plain
  parameter values (which live in the params buffer, not the IR) share these
  even though their model keys differ.

Concurrency: writers stage into a temp file in the destination directory and
publish with ``os.replace`` (atomic on POSIX and Windows), so readers never
observe partial objects and never take a lock.  A corrupt or truncated object
(killed writer on a non-atomic filesystem, bit rot) reads as a miss and is
unlinked best-effort.

Eviction: :meth:`ArtifactStore.gc` removes oldest-``mtime`` objects until the
store fits a byte cap — exposed as ``python -m repro.cache gc``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ArtifactStore",
    "normalize_flags",
    "resolve_store",
    "unit_fingerprints",
    "artifact_salt",
    "model_artifact_key",
    "optimize_artifact_key",
    "tuned_pipeline_key",
    "STORE_ENV_VAR",
    "TUNED_KEY_PREFIX",
]

#: Key prefix of tuned-pipeline entries (autotune winners + provenance).
#: The prefix keeps them enumerable on disk — ``python -m repro.cache stats``
#: reports tuned-cache health next to the artifact cache — and lets the
#: store's counters split tuned traffic from compile-artifact traffic.
TUNED_KEY_PREFIX = "tune-"

#: Environment variable naming the default on-disk store root.  When set,
#: sessions (and the module-level ``repro.compile``) persist artifacts there
#: without any code changes.
STORE_ENV_VAR = "REPRO_ARTIFACT_DIR"

#: Known compile flags and their default (effective) values.  Flag
#: normalization maps every compile to the *effective* configuration so that
#: explicitly passing a default (``{"analysis_cache": True}``) aliases the
#: clean entry — which is correct, it compiles identically — while any
#: non-default value (``{"sanitize": True}``, ``{"analysis_cache": False}``)
#: always yields a distinct key.
_FLAG_DEFAULTS: Dict[str, object] = {
    "analysis_cache": True,
    "structured_codegen": True,
    "sanitize": False,
}


def normalize_flags(flags: Optional[Dict[str, object]]) -> Tuple:
    """Canonicalise compile flags for cache keying.

    Known flags are coerced to their effective boolean value and dropped when
    they equal the default; unknown flags are kept verbatim (sorted).  The
    result is a hashable tuple: ``()`` for every spelling of the default
    configuration.
    """
    if not flags:
        return ()
    items = []
    for key in sorted(flags):
        value = flags[key]
        if key in _FLAG_DEFAULTS:
            value = bool(value)
            if value == _FLAG_DEFAULTS[key]:
                continue
        items.append((str(key), value))
    return tuple(items)


# ---------------------------------------------------------------------------
# Content addressing
# ---------------------------------------------------------------------------


def artifact_salt() -> str:
    """Global invalidators shared by every artifact key.

    Covers the Python lowering version and the IR payload format.  Struct
    layout changes need no salt of their own: function fingerprints expand
    every struct to its full field layout (:func:`repro.ir.fingerprint.\
type_signature`), so the in-place mutations that bump
    :data:`repro.ir.types.TYPE_MUTATION_EPOCH` change the content hash
    directly — the live epoch counter itself is process-history-dependent
    (every compile bumps it while building its structs) and must never leak
    into a content address.
    """
    from ..backends.pycodegen import CODEGEN_VERSION
    from ..ir.serialize import FORMAT_VERSION

    return f"cg{CODEGEN_VERSION}:ir{FORMAT_VERSION}"


def _sha256(*tokens: str) -> str:
    h = hashlib.sha256()
    for token in tokens:
        h.update(token.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def unit_fingerprints(module, pipeline_fingerprint: str, flags: Optional[Dict[str, object]] = None) -> Dict[str, str]:
    """Per-function *compile unit* keys for every function of ``module``.

    A unit key covers the function's own structural fingerprint, the unit
    keys of everything it (transitively) calls, the optimisation pipeline,
    the normalized flags and the global :func:`artifact_salt` — so a unit is
    reusable exactly when re-running distill → optimize → codegen on it would
    reproduce the stored artifact.
    """
    from ..ir.fingerprint import function_fingerprint
    from ..ir.instructions import Call

    salt = artifact_salt()
    flags_token = repr(normalize_flags(flags))
    own: Dict[str, str] = {
        name: function_fingerprint(fn) for name, fn in module.functions.items()
    }
    callees: Dict[str, List[str]] = {}
    for name, fn in module.functions.items():
        seen = set()
        for instr in fn.instructions():
            if isinstance(instr, Call):
                seen.add(instr.callee.name)
        callees[name] = sorted(seen)

    keys: Dict[str, str] = {}

    def key_of(name: str, stack: frozenset) -> str:
        cached = keys.get(name)
        if cached is not None:
            return cached
        if name in stack:
            # Defensive: generated models have an acyclic call graph; on a
            # cycle fall back to the plain structural fingerprint.
            return own[name]
        inner = stack | {name}
        callee_keys = [key_of(c, inner) for c in callees.get(name, ())]
        key = _sha256(own[name], *callee_keys, pipeline_fingerprint, flags_token, salt)
        keys[name] = key
        return key

    for name in module.functions:
        key_of(name, frozenset())
    return keys


def model_artifact_key(
    composition,
    pipeline,
    seed: int,
    flags: Optional[Dict[str, object]] = None,
) -> str:
    """Store key of a full-model compile (exact: includes parameter values)."""
    from .session import _pipeline_fingerprint, structural_fingerprint

    return _sha256(
        "model",
        structural_fingerprint(composition),
        _pipeline_fingerprint(pipeline),
        str(int(seed)),
        repr(pipeline.verify),
        repr(normalize_flags(flags)),
        artifact_salt(),
    )


def optimize_artifact_key(unit_keys: Dict[str, str]) -> str:
    """Store key of an optimized module, from pre-optimization unit keys."""
    return _sha256("opt", *sorted(unit_keys.values()))


def tuned_pipeline_key(composition, engine: str, objective_id: str) -> str:
    """Store key of an autotuned-pipeline entry.

    Keyed on the structural composition hash × engine × objective (plus the
    global salt): every structurally identical rebuild of a model resolves to
    the same tuned pipeline, a pipeline tuned for one engine never leaks to
    another, and changing the objective weights starts a fresh search.  Run
    seeds and budgets are deliberately excluded — see DESIGN.md, "Pipeline
    autotuner".
    """
    from .session import structural_fingerprint

    return TUNED_KEY_PREFIX + _sha256(
        "autotune",
        structural_fingerprint(composition),
        str(engine),
        str(objective_id),
        artifact_salt(),
    )


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


class ArtifactStore:
    """A content-addressed pickle store with atomic writes.

    Readers are lock-free: ``get`` opens the published object file directly
    and treats any read/decode failure as a miss.  Writers are safe under
    concurrency from multiple processes: the payload is staged in a unique
    temp file in the destination directory and published atomically with
    ``os.replace`` — concurrent writers of the same key race benignly (the
    content is identical by construction of the key).
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(os.fspath(root))
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.errors = 0
        #: Process-local counters for tuned-pipeline entries (keys carrying
        #: :data:`TUNED_KEY_PREFIX`); these are a *subset* of the totals.
        self.tuned_hits = 0
        self.tuned_misses = 0
        self.tuned_writes = 0

    # -- paths ------------------------------------------------------------
    def _objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def path_for(self, key: str) -> str:
        return os.path.join(self._objects_dir(), key[:2], f"{key}.pkl")

    # -- read/write --------------------------------------------------------
    def get(self, key: str):
        """The stored payload for ``key``, or ``None`` on a miss.

        Corrupt/partial objects count as misses (and are unlinked
        best-effort) rather than surfacing as exceptions.
        """
        path = self.path_for(key)
        tuned = key.startswith(TUNED_KEY_PREFIX)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
                self.tuned_misses += tuned
            return None
        except Exception:
            with self._lock:
                self.misses += 1
                self.tuned_misses += tuned
                self.errors += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        with self._lock:
            self.hits += 1
            self.tuned_hits += tuned
        return payload

    def put(self, key: str, payload) -> None:
        """Atomically publish ``payload`` under ``key``."""
        path = self.path_for(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(prefix=".tmp-", dir=directory)
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        with self._lock:
            self.writes += 1
            self.tuned_writes += key.startswith(TUNED_KEY_PREFIX)

    # -- maintenance -------------------------------------------------------
    def _iter_objects(self) -> Iterable[Tuple[str, os.stat_result]]:
        objects = self._objects_dir()
        if not os.path.isdir(objects):
            return
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".pkl"):
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    yield path, os.stat(path)
                except OSError:
                    continue

    def stats(self) -> Dict[str, int]:
        """On-disk object count and total bytes plus process-local counters."""
        files = 0
        size = 0
        for _path, st in self._iter_objects():
            files += 1
            size += st.st_size
        return {
            "files": files,
            "bytes": size,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "errors": self.errors,
        }

    def gc(self, max_bytes: int) -> Dict[str, int]:
        """Evict oldest objects until the store holds at most ``max_bytes``.

        Eviction order is ``mtime`` (oldest first): ``os.replace`` stamps a
        fresh mtime on every write, so re-used artifacts that were recently
        re-published survive longer.  Returns a summary of what was removed.
        """
        entries = sorted(self._iter_objects(), key=lambda e: (e[1].st_mtime, e[0]))
        total = sum(st.st_size for _p, st in entries)
        removed_files = 0
        removed_bytes = 0
        for path, st in entries:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= st.st_size
            removed_files += 1
            removed_bytes += st.st_size
        return {
            "removed_files": removed_files,
            "removed_bytes": removed_bytes,
            "kept_files": len(entries) - removed_files,
            "kept_bytes": total,
        }

    def tuned_stats(self) -> Dict[str, int]:
        """Tuned-pipeline cache health: on-disk entries plus local counters.

        Entry enumeration works across processes (tuned keys carry
        :data:`TUNED_KEY_PREFIX`, so their object files are recognisable on
        disk); the hit/miss/write counters are this process's, like every
        other store counter.
        """
        entries = 0
        size = 0
        for path, st in self._iter_objects():
            if os.path.basename(path).startswith(TUNED_KEY_PREFIX):
                entries += 1
                size += st.st_size
        with self._lock:
            return {
                "entries": entries,
                "bytes": size,
                "hits": self.tuned_hits,
                "misses": self.tuned_misses,
                "writes": self.tuned_writes,
            }

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "errors": self.errors,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<ArtifactStore {self.root!r}>"


def resolve_store(store) -> Optional[ArtifactStore]:
    """Coerce a ``store=`` argument to an :class:`ArtifactStore` or ``None``.

    ``None`` consults :data:`STORE_ENV_VAR`; ``False`` disables the store
    even when the environment variable is set; a string/path opens a store
    at that root; an :class:`ArtifactStore` passes through.
    """
    if store is False:
        return None
    if store is None:
        root = os.environ.get(STORE_ENV_VAR)
        return ArtifactStore(root) if root else None
    if isinstance(store, ArtifactStore):
        return store
    return ArtifactStore(os.fspath(store))
