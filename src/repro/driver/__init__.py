"""repro.driver — the unified compiler-driver layer.

This package is the extensibility seam of the reproduction (see DESIGN.md,
"Driver architecture"), modelled on LLVM's new-pass-manager idiom that the
source paper builds on:

* :mod:`repro.driver.registry` — the pass registry (``@register_pass``) and
  the pipeline-alias registry (``@register_pipeline_alias``).
* :mod:`repro.driver.pipeline` — ``parse_pipeline``: textual pipeline
  descriptions ("default<O2>,licm,cse(iterations=2)") compiled into a
  :class:`repro.passes.PassManager`.
* :mod:`repro.driver.engines` — the :class:`ExecutionEngine` protocol and the
  backend registry replacing the old hard-coded ``ENGINES`` tuple.
* :mod:`repro.driver.session` — the caching :class:`Session` facade and the
  top-level :func:`repro.compile` entry point.

Submodules are loaded lazily so that low-level modules (``repro.passes.*``,
``repro.backends.*``) can import their registries from here without creating
an import cycle through this package's public surface.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING

_LAZY_EXPORTS = {
    "register_pass": "registry",
    "register_pipeline_alias": "registry",
    "create_pass": "registry",
    "list_passes": "registry",
    "list_pipeline_aliases": "registry",
    "pass_preserves": "registry",
    "pass_metadata": "registry",
    "parse_pipeline": "pipeline",
    "PipelineParseError": "pipeline",
    "ExecutionEngine": "engines",
    "EngineCapabilities": "engines",
    "EngineInstance": "engines",
    "register_engine": "engines",
    "get_engine": "engines",
    "list_engines": "engines",
    "engine_capabilities": "engines",
    "Session": "session",
    "default_session": "session",
    "compile": "session",
    "structural_fingerprint": "session",
    "AutotuneConfig": "autotune",
    "AutotuneResult": "autotune",
    "run_autotune": "autotune",
    "generate_candidates": "autotune",
}

__all__ = sorted(_LAZY_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .autotune import (  # noqa: F401
        AutotuneConfig,
        AutotuneResult,
        generate_candidates,
        run_autotune,
    )
    from .engines import (  # noqa: F401
        EngineCapabilities,
        EngineInstance,
        ExecutionEngine,
        engine_capabilities,
        get_engine,
        list_engines,
        register_engine,
    )
    from .pipeline import PipelineParseError, parse_pipeline  # noqa: F401
    from .registry import (  # noqa: F401
        create_pass,
        list_passes,
        list_pipeline_aliases,
        pass_metadata,
        pass_preserves,
        register_pass,
        register_pipeline_alias,
    )
    from .session import (  # noqa: F401
        Session,
        compile,
        default_session,
        structural_fingerprint,
    )


def __getattr__(name: str):
    try:
        module_name = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
