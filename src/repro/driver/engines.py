"""The execution-engine protocol and the pluggable backend registry.

This replaces the hard-coded ``ENGINES`` tuple and the if/elif dispatch that
used to live inside ``CompiledModel.run``.  Each backend module registers an
:class:`ExecutionEngine` under its engine name::

    @register_engine
    class GpuSimEngine:
        name = "gpu-sim"
        def capabilities(self): ...
        def prepare(self, model): ...

``prepare`` binds the engine to one compiled model's artifacts/layout and
returns an :class:`EngineInstance` whose ``run(inputs, num_trials)`` executes
trials and collects :class:`RunResults`.  The shared buffer-allocation /
result-extraction choreography lives in the :class:`EngineInstance` base
class; engines only implement :meth:`EngineInstance.execute`.
"""

from __future__ import annotations

import importlib
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from typing import Protocol, runtime_checkable

from ..cogframe.runner import RunResults, normalize_inputs
from ..errors import EngineError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.distill import CompiledModel


@dataclass(frozen=True)
class EngineCapabilities:
    """Static description of what an engine can do (for schedulers/UIs)."""

    name: str
    description: str
    #: Executes evaluations in parallel (processes, threads or SIMT lanes).
    parallel: bool = False
    #: Honours the ``workers=N`` run option.
    supports_workers: bool = False
    #: Runs lowered Python code rather than interpreting IR.
    compiled: bool = True


class EngineInstance:
    """An engine bound to one compiled model, ready to run trials.

    Subclasses implement :meth:`execute`; the base class owns the
    buffer-allocation / execution / result-extraction choreography (and its
    timing breakdown, which feeds the Figure 7 analysis).
    """

    def __init__(self, engine_name: str, model: "CompiledModel"):
        self.engine_name = engine_name
        self.model = model

    def run(
        self,
        inputs: Sequence,
        num_trials: Optional[int] = None,
        seed: int = 0,
        **options,
    ) -> RunResults:
        """Execute ``num_trials`` trials and collect the results."""
        model = self.model
        input_sets = normalize_inputs(model.composition, inputs)
        if num_trials is None:
            num_trials = len(input_sets)

        breakdown: Dict[str, float] = {}
        start = time.perf_counter()
        buffers = model.allocate_buffers(inputs, num_trials, seed)
        breakdown["input_construction"] = time.perf_counter() - start

        start = time.perf_counter()
        self.execute(buffers, num_trials, **options)
        breakdown["execution"] = time.perf_counter() - start

        start = time.perf_counter()
        results = model._collect_results(buffers, num_trials, self.engine_name)
        breakdown["output_extraction"] = time.perf_counter() - start
        breakdown["compilation"] = model.stats.total_seconds
        results.wall_seconds = breakdown["execution"]
        results.breakdown = breakdown
        return results

    def run_batch(
        self,
        inputs_batch: Sequence[Sequence],
        num_trials: Union[int, Sequence[Optional[int]], None] = None,
        seed: Union[int, Sequence[int]] = 0,
        **options,
    ) -> List[RunResults]:
        """Execute several independent input batches against one compiled model.

        Each element of ``inputs_batch`` is an ``inputs`` value exactly as
        :meth:`run` accepts; ``num_trials`` and ``seed`` may be scalars
        (applied to every element) or per-element sequences.  Results are
        bitwise identical to calling :meth:`run` once per element on this
        same instance — parallel engines merely overlap the elements'
        grid evaluations (one pool dispatch per scheduler step for the whole
        batch) instead of paying one round-trip per element.
        """
        model = self.model
        count = len(inputs_batch)
        trials_list = (
            list(num_trials)
            if isinstance(num_trials, (list, tuple))
            else [num_trials] * count
        )
        seeds = list(seed) if isinstance(seed, (list, tuple)) else [seed] * count
        if len(trials_list) != count or len(seeds) != count:
            raise ValueError(
                "per-element num_trials/seed sequences must match the batch size"
            )

        breakdown: Dict[str, float] = {}
        start = time.perf_counter()
        elements = []
        for inputs, trials, element_seed in zip(inputs_batch, trials_list, seeds):
            if trials is None:
                trials = len(normalize_inputs(model.composition, inputs))
            elements.append((model.allocate_buffers(inputs, trials, element_seed), trials))
        breakdown["input_construction"] = time.perf_counter() - start

        start = time.perf_counter()
        self.execute_batch(elements, **options)
        breakdown["execution"] = time.perf_counter() - start

        start = time.perf_counter()
        results = [
            model._collect_results(buffers, trials, self.engine_name)
            for buffers, trials in elements
        ]
        breakdown["output_extraction"] = time.perf_counter() - start
        breakdown["compilation"] = model.stats.total_seconds
        breakdown["batch_size"] = float(count)
        for result in results:
            # Timing is shared across the whole batch (the elements ran
            # interleaved); each result carries the batch-level numbers.
            result.wall_seconds = breakdown["execution"]
            result.breakdown = dict(breakdown)
        return results

    def execute(self, buffers: Dict[str, object], num_trials: int, **options) -> None:
        raise NotImplementedError

    def execute_batch(
        self, elements: Sequence[Tuple[Dict[str, object], int]], **options
    ) -> None:
        """Execute several ``(buffers, num_trials)`` elements.

        The default runs them back to back; parallel engines override this
        to interleave the elements and batch their grid evaluations.
        """
        for buffers, num_trials in elements:
            self.execute(buffers, num_trials, **options)

    def close(self) -> None:
        """Release engine-held resources (worker pools, device state).

        The default is a no-op; instances remain usable after ``close`` —
        engines lazily rebuild what they need.
        """

    def __enter__(self) -> "EngineInstance":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@runtime_checkable
class ExecutionEngine(Protocol):
    """What a pluggable backend must provide to join the registry."""

    name: str

    def capabilities(self) -> EngineCapabilities:  # pragma: no cover - protocol
        ...

    def prepare(self, model: "CompiledModel") -> EngineInstance:  # pragma: no cover
        ...


#: engine name -> registered engine (a singleton instance per engine class).
_ENGINE_REGISTRY: Dict[str, "ExecutionEngine"] = {}

#: Backend modules whose import registers the built-in engines.
_BUILTIN_BACKEND_MODULES = (
    "repro.backends.interp",
    "repro.backends.pycodegen",
    "repro.backends.multicore",
    "repro.backends.gpu_sim",
    "repro.backends.lane",
)

_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        for module in _BUILTIN_BACKEND_MODULES:
            importlib.import_module(module)
        # Only mark loaded on success so a transient import failure is
        # retried (and re-raised) instead of leaving the registry empty.
        _BUILTINS_LOADED = True


def register_engine(engine_cls):
    """Class decorator: instantiate and register an engine under ``cls.name``."""
    name = getattr(engine_cls, "name", None)
    if not name:
        raise ValueError(f"engine class {engine_cls!r} needs a non-empty 'name' attribute")
    existing = _ENGINE_REGISTRY.get(name)
    if existing is not None and type(existing) is not engine_cls:
        raise ValueError(
            f"engine name {name!r} is already registered to {type(existing).__name__}"
        )
    _ENGINE_REGISTRY[name] = engine_cls()
    return engine_cls


def get_engine(name: str) -> "ExecutionEngine":
    """Look up a registered engine; raises :class:`EngineError` when unknown."""
    _ensure_builtins()
    engine = _ENGINE_REGISTRY.get(name)
    if engine is None:
        raise EngineError(
            f"unknown engine {name!r}; choose one of {list_engines()}"
        )
    return engine


def list_engines() -> Tuple[str, ...]:
    """Names of every registered execution engine, sorted."""
    _ensure_builtins()
    return tuple(sorted(_ENGINE_REGISTRY))


def engine_capabilities() -> Dict[str, EngineCapabilities]:
    """Capability descriptions for every registered engine."""
    _ensure_builtins()
    return {name: engine.capabilities() for name, engine in sorted(_ENGINE_REGISTRY.items())}
