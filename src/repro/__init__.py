"""repro — a reproduction of "Distill: Domain-Specific Compilation for Cognitive Models".

Quickstart (see DESIGN.md for the full architecture)::

    import repro
    from repro.models import stroop

    engine = repro.compile(
        stroop.build_botvinick_stroop(), target="compiled", pipeline="default<O2>"
    )
    results = engine.run(stroop.default_inputs("incongruent"), num_trials=8)

The package is organised as follows:

* :mod:`repro.cogframe` — a PsyNeuLink-like cognitive-modelling substrate:
  mechanisms, projections, compositions, a condition-based scheduler, a
  function library and a pure-Python reference runner.
* :mod:`repro.minitorch` — a minimal neural-network library standing in for
  PyTorch, with a bridge that lowers its modules into the IR.
* :mod:`repro.ir` — a typed SSA intermediate representation modelled on LLVM.
* :mod:`repro.passes` — optimisation passes (mem2reg, constant propagation,
  CSE, DCE, LICM, inlining, CFG simplification), each registered with the
  driver's pass registry.
* :mod:`repro.driver` — the compiler driver: the pass/alias registries,
  textual pipeline parsing (:func:`parse_pipeline`), the pluggable
  execution-engine registry and the caching :class:`Session` facade behind
  :func:`repro.compile`.
* :mod:`repro.analysis` — the paper's model analyses: floating-point value
  range propagation, floating-point scalar evolution, adaptive mesh
  refinement and clone detection.
* :mod:`repro.core` — the Distill compiler itself: type/shape extraction,
  static data-structure conversion, per-node and whole-model code generation,
  and :func:`repro.core.distill.compile_composition`.
* :mod:`repro.backends` — execution engines: IR interpreter, compiled
  Python/NumPy backend, multicore backend and the SIMT GPU simulator; each
  self-registers with the driver's backend registry.
* :mod:`repro.lint` — the static safety suite: IR lint checkers built on the
  monotone dataflow framework, baseline suppression and the mutation-notify
  audit; its runtime counterpart is the ``flags={"sanitize": True}`` codegen
  mode cross-validated by the fuzz oracle.
* :mod:`repro.models` — the evaluated cognitive models (Necker cube,
  Predator-Prey, Botvinick Stroop, Extended Stroop, Multitasking).
* :mod:`repro.bench` — the benchmark harness regenerating the paper's
  figures through a shared compilation session.
* :mod:`repro.serve` — the serving daemon: a coalescing request front-end
  over a warm session and persistent engine bindings
  (``python -m repro.serve --socket ...``).
"""

from .driver.engines import (
    EngineCapabilities,
    ExecutionEngine,
    engine_capabilities,
    list_engines,
    register_engine,
)
from .driver.pipeline import PipelineParseError, parse_pipeline
from .driver.registry import (
    list_passes,
    pass_metadata,
    pass_preserves,
    register_pass,
    register_pipeline_alias,
)
from .driver.session import Session, compile, default_session, structural_fingerprint

__version__ = "1.3.0"


def autotune(composition, budget=None, **kwargs):
    """Autotune the pass pipeline for a model through the default session.

    ``repro.autotune("botvinick_stroop", budget=8)`` searches candidate
    pipelines (each proven bitwise-equivalent before being raced) and
    persists the winner so ``repro.compile(model, pipeline="auto")`` — or the
    serving daemon — picks it up with zero search cost.  See
    :meth:`repro.Session.autotune`.
    """
    return default_session().autotune(composition, budget=budget, **kwargs)


def __getattr__(name: str):
    # repro.fuzz / repro.lint / repro.serve pull in the whole
    # driver/backends stack; load them lazily so `import repro` stays light
    # while `repro.fuzz.run_campaign(...)`, `repro.lint.run_lint(...)` and
    # `repro.serve.Server(...)` work without an explicit submodule import.
    if name in ("fuzz", "lint", "serve"):
        import importlib

        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "__version__",
    "fuzz",
    "lint",
    "serve",
    "compile",
    "autotune",
    "Session",
    "default_session",
    "structural_fingerprint",
    "parse_pipeline",
    "PipelineParseError",
    "list_passes",
    "pass_preserves",
    "pass_metadata",
    "register_pass",
    "register_pipeline_alias",
    "list_engines",
    "engine_capabilities",
    "register_engine",
    "ExecutionEngine",
    "EngineCapabilities",
]
