"""repro — a reproduction of "Distill: Domain-Specific Compilation for Cognitive Models".

The package is organised as follows (see DESIGN.md for the full inventory):

* :mod:`repro.cogframe` — a PsyNeuLink-like cognitive-modelling substrate:
  mechanisms, projections, compositions, a condition-based scheduler, a
  function library and a pure-Python reference runner.
* :mod:`repro.minitorch` — a minimal neural-network library standing in for
  PyTorch, with a bridge that lowers its modules into the IR.
* :mod:`repro.ir` — a typed SSA intermediate representation modelled on LLVM.
* :mod:`repro.passes` — optimisation passes (mem2reg, constant propagation,
  CSE, DCE, LICM, inlining, CFG simplification).
* :mod:`repro.analysis` — the paper's model analyses: floating-point value
  range propagation, floating-point scalar evolution, adaptive mesh
  refinement and clone detection.
* :mod:`repro.core` — the Distill compiler itself: type/shape extraction,
  static data-structure conversion, per-node and whole-model code generation,
  and the public :func:`repro.core.distill.compile_model` API.
* :mod:`repro.backends` — execution engines: IR interpreter, compiled
  Python/NumPy backend, multicore backend and the SIMT GPU simulator.
* :mod:`repro.models` — the evaluated cognitive models (Necker cube,
  Predator-Prey, Botvinick Stroop, Extended Stroop, Multitasking).
* :mod:`repro.bench` — the benchmark harness regenerating the paper's
  figures.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
